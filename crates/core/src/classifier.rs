//! The mobility classifier state machine (paper Figure 5).

use mobisense_mobility::{Direction, MobilityMode};
use mobisense_phy::csi::Csi;
use mobisense_telemetry::{Event, NoopSink, Sink};
use mobisense_util::units::{Nanos, MILLISECOND};

use crate::similarity::{SimilarityState, SimilarityTracker};
use crate::trend::{Trend, TrendConfig, TrendDetector};

/// Thresholds and periods of the classification pipeline.
#[derive(Clone, Debug)]
pub struct ClassifierConfig {
    /// CSI sampling period. The paper evaluates 50-3000 ms (Figure 6a)
    /// and settles on 500 ms.
    pub csi_sampling_period: Nanos,
    /// Moving-average window over similarity samples (section 2.5).
    pub similarity_window: usize,
    /// Similarity above this means "stationary, no environmental change"
    /// (paper: `Thr_sta = 0.98`).
    pub thr_static: f64,
    /// Similarity below this means device mobility
    /// (paper: `Thr_env = 0.70`).
    pub thr_env: f64,
    /// ToF trend detection parameters (4 s window by default).
    pub trend: TrendConfig,
    /// Once macro-mobility has been detected, keep reporting it (with
    /// the last direction) for up to this long after the ToF trend
    /// disappears, provided the CSI still indicates device mobility.
    /// Walking users turn; a turn shorter than the ToF window must not
    /// bounce the classification back to micro.
    pub macro_hold: Nanos,
}

impl Default for ClassifierConfig {
    fn default() -> Self {
        ClassifierConfig {
            csi_sampling_period: 500 * MILLISECOND,
            similarity_window: 3,
            thr_static: 0.98,
            thr_env: 0.70,
            trend: TrendConfig::default(),
            macro_hold: 4 * mobisense_util::units::SECOND,
        }
    }
}

/// The classifier's output: one of the paper's four modes, with the
/// radial direction attached when the mode is macro-mobility.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Classification {
    /// Classified mobility mode.
    pub mode: MobilityMode,
    /// Direction relative to the AP (macro-mobility only).
    pub direction: Option<Direction>,
}

impl Classification {
    /// Classification for a non-macro mode.
    pub fn of(mode: MobilityMode) -> Self {
        Classification {
            mode,
            direction: None,
        }
    }

    /// Macro-mobility with a radial direction.
    pub fn macro_with(direction: Direction) -> Self {
        Classification {
            mode: MobilityMode::Macro,
            direction: Some(direction),
        }
    }
}

impl std::fmt::Display for Classification {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.direction {
            Some(d) => write!(f, "{} ({})", self.mode, d),
            None => write!(f, "{}", self.mode),
        }
    }
}

/// Serializable dynamic state of a [`MobilityClassifier`], produced by
/// [`MobilityClassifier::export_state`]. Plain data: the session
/// snapshot codec owns the byte-level encoding.
#[derive(Clone, Debug, PartialEq)]
pub struct ClassifierState {
    /// Similarity tracker state.
    pub similarity: SimilarityState,
    /// ToF trend window contents, oldest-first.
    pub trend_samples: Vec<f64>,
    /// Whether demand-driven ToF measurement is running.
    pub tof_active: bool,
    /// Latest classification, if any.
    pub current: Option<Classification>,
    /// Number of decisions made so far.
    pub decisions: u64,
    /// Last time a ToF trend fired, with its direction.
    pub last_trend: Option<(Nanos, Direction)>,
}

/// AP-side mobility classifier: consumes CSI snapshots from ordinary
/// frame exchanges and median-filtered ToF samples, produces a
/// [`Classification`] every CSI sampling period.
///
/// ToF measurement is demand-driven exactly as in the paper's Figure 5:
/// it runs only while the CSI similarity indicates device mobility
/// (saving airtime otherwise), which callers observe through
/// [`MobilityClassifier::tof_measurement_active`].
#[derive(Clone, Debug)]
pub struct MobilityClassifier {
    cfg: ClassifierConfig,
    similarity: SimilarityTracker,
    trend: TrendDetector,
    tof_active: bool,
    current: Option<Classification>,
    decisions: u64,
    /// Last time a ToF trend fired, with its direction.
    last_trend: Option<(Nanos, Direction)>,
}

impl MobilityClassifier {
    /// Creates a classifier with the given configuration.
    pub fn new(cfg: ClassifierConfig) -> Self {
        assert!(
            cfg.thr_static > cfg.thr_env,
            "static threshold must exceed environmental threshold"
        );
        MobilityClassifier {
            similarity: SimilarityTracker::new(cfg.csi_sampling_period, cfg.similarity_window),
            trend: TrendDetector::new(cfg.trend),
            cfg,
            tof_active: false,
            current: None,
            decisions: 0,
            last_trend: None,
        }
    }

    /// The classifier's configuration.
    pub fn config(&self) -> &ClassifierConfig {
        &self.cfg
    }

    /// Whether the AP should currently be taking ToF measurements.
    pub fn tof_measurement_active(&self) -> bool {
        self.tof_active
    }

    /// Latest classification, if one has been made.
    pub fn current(&self) -> Option<Classification> {
        self.current
    }

    /// Number of classification decisions made so far.
    pub fn decision_count(&self) -> u64 {
        self.decisions
    }

    /// Offers the CSI of a frame received at `now`. When a sampling
    /// period completes, runs the Figure-5 decision logic and returns the
    /// (possibly unchanged) classification.
    pub fn on_frame_csi(&mut self, now: Nanos, csi: &Csi) -> Option<Classification> {
        self.on_frame_csi_with(now, csi, &mut NoopSink)
    }

    /// [`MobilityClassifier::on_frame_csi`] with telemetry: each
    /// completed decision is recorded as an [`Event::Decision`] in
    /// `sink`.
    pub fn on_frame_csi_with<S: Sink + ?Sized>(
        &mut self,
        now: Nanos,
        csi: &Csi,
        sink: &mut S,
    ) -> Option<Classification> {
        let smoothed = self.similarity.offer(now, csi);
        self.finish_frame(now, smoothed, sink)
    }

    /// [`MobilityClassifier::on_frame_csi`] for callers that hold only
    /// the CSI magnitude digest (the per-subcarrier magnitude profile)
    /// instead of a full CSI matrix. The serving layer's wire frames
    /// carry this digest; classification is identical because the
    /// Equation-(1) similarity only ever consumes the profile.
    pub fn on_frame_profile(&mut self, now: Nanos, profile: Vec<f64>) -> Option<Classification> {
        self.on_frame_profile_with(now, profile, &mut NoopSink)
    }

    /// [`MobilityClassifier::on_frame_profile`] with telemetry.
    pub fn on_frame_profile_with<S: Sink + ?Sized>(
        &mut self,
        now: Nanos,
        profile: Vec<f64>,
        sink: &mut S,
    ) -> Option<Classification> {
        let smoothed = self.similarity.offer_profile(now, profile);
        self.finish_frame(now, smoothed, sink)
    }

    fn finish_frame<S: Sink + ?Sized>(
        &mut self,
        now: Nanos,
        smoothed: Option<f64>,
        sink: &mut S,
    ) -> Option<Classification> {
        let decision = self.decide(now, smoothed?)?;
        if sink.enabled() {
            sink.record(Event::Decision {
                at: now,
                mode: decision.mode.label().to_string(),
                direction: decision.direction.map(|d| d.label().to_string()),
            });
        }
        Some(decision)
    }

    fn decide(&mut self, now: Nanos, smoothed: f64) -> Option<Classification> {
        let decision = if smoothed > self.cfg.thr_static {
            self.stop_tof();
            Classification::of(MobilityMode::Static)
        } else if smoothed > self.cfg.thr_env {
            self.stop_tof();
            Classification::of(MobilityMode::Environmental)
        } else {
            // Device mobility: consult ToF.
            if !self.tof_active {
                self.tof_active = true;
                self.trend.reset();
            }
            match self.trend.current() {
                Trend::Increasing => {
                    self.last_trend = Some((now, Direction::Away));
                    Classification::macro_with(Direction::Away)
                }
                Trend::Decreasing => {
                    self.last_trend = Some((now, Direction::Towards));
                    Classification::macro_with(Direction::Towards)
                }
                Trend::None => match self.last_trend {
                    // Hysteresis: a recent trend plus ongoing device
                    // mobility still means the user is walking (turns
                    // break the monotone ToF run without ending the walk).
                    Some((at, d)) if now.saturating_sub(at) <= self.cfg.macro_hold => {
                        Classification::macro_with(d)
                    }
                    _ => Classification::of(MobilityMode::Micro),
                },
            }
        };
        self.current = Some(decision);
        self.decisions += 1;
        Some(decision)
    }

    /// Feeds one median-filtered ToF sample (clock cycles). Ignored when
    /// ToF measurement is inactive — the AP would not have taken it.
    pub fn on_tof_median(&mut self, median_cycles: f64) {
        if self.tof_active {
            self.trend.push(median_cycles);
        }
    }

    /// Exports the classifier's complete dynamic state for session
    /// hibernation. Round-trips through [`from_state`](Self::from_state):
    /// a restored classifier makes bit-identical decisions from the saved
    /// point on.
    pub fn export_state(&self) -> ClassifierState {
        ClassifierState {
            similarity: self.similarity.export_state(),
            trend_samples: self.trend.samples(),
            tof_active: self.tof_active,
            current: self.current,
            decisions: self.decisions,
            last_trend: self.last_trend,
        }
    }

    /// Reconstructs a classifier from [`export_state`](Self::export_state)
    /// output under the given configuration. Panics only on the same
    /// configuration invariant as [`new`](Self::new).
    pub fn from_state(cfg: ClassifierConfig, state: ClassifierState) -> Self {
        let mut cl = MobilityClassifier::new(cfg);
        cl.similarity = SimilarityTracker::from_state(
            cl.cfg.csi_sampling_period,
            cl.cfg.similarity_window,
            state.similarity,
        );
        cl.trend = TrendDetector::from_state(cl.cfg.trend, &state.trend_samples);
        cl.tof_active = state.tof_active;
        cl.current = state.current;
        cl.decisions = state.decisions;
        cl.last_trend = state.last_trend;
        cl
    }

    /// Approximate resident heap bytes of the classifier's buffers, for
    /// the serving layer's hot-working-set gauges.
    pub fn approx_bytes(&self) -> usize {
        self.similarity.approx_bytes() + 8 * self.cfg.trend.window
    }

    /// Resets all state, e.g. after the client roams to another AP.
    pub fn reset(&mut self) {
        self.similarity.reset();
        self.stop_tof();
        self.current = None;
    }

    fn stop_tof(&mut self) {
        self.tof_active = false;
        self.trend.reset();
        self.last_trend = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobisense_util::DetRng;

    fn random_csi(rng: &mut DetRng) -> Csi {
        let mut c = Csi::zeros(3, 2, 52);
        for i in 0..c.as_slice().len() {
            let v = rng.complex_gaussian(1.0);
            c.as_mut_slice()[i] = v;
        }
        c
    }

    fn noisy(rng: &mut DetRng, base: &Csi, sigma: f64) -> Csi {
        let mut c = base.clone();
        for v in c.as_mut_slice() {
            *v += rng.complex_gaussian(sigma);
        }
        c
    }

    /// Mix of `base` and a fresh random channel with weight `w` on the
    /// fresh part — emulates partial (environmental) channel change.
    fn partially_changed(rng: &mut DetRng, base: &Csi, w: f64) -> Csi {
        let fresh = random_csi(rng);
        let mut c = base.clone();
        for (v, f) in c.as_mut_slice().iter_mut().zip(fresh.as_slice()) {
            *v = *v * (1.0 - w) + *f * w;
        }
        c
    }

    const PERIOD: Nanos = 500 * MILLISECOND;

    #[test]
    fn stable_csi_classifies_static() {
        let mut rng = DetRng::seed_from_u64(1);
        let base = random_csi(&mut rng);
        let mut cl = MobilityClassifier::new(ClassifierConfig::default());
        let mut last = None;
        for i in 0..10u64 {
            last = cl
                .on_frame_csi(i * PERIOD, &noisy(&mut rng, &base, 0.01))
                .or(last);
        }
        assert_eq!(last, Some(Classification::of(MobilityMode::Static)));
        assert!(!cl.tof_measurement_active());
    }

    #[test]
    fn partial_change_classifies_environmental() {
        let mut rng = DetRng::seed_from_u64(2);
        let base = random_csi(&mut rng);
        let mut cl = MobilityClassifier::new(ClassifierConfig::default());
        let mut prev = base.clone();
        let mut modes = Vec::new();
        for i in 0..20u64 {
            // Each sample shares most structure with the previous one.
            let cur = partially_changed(&mut rng, &prev, 0.12);
            if let Some(c) = cl.on_frame_csi(i * PERIOD, &cur) {
                modes.push(c.mode);
            }
            prev = cur;
        }
        let env = modes
            .iter()
            .filter(|m| **m == MobilityMode::Environmental)
            .count();
        assert!(
            env * 2 > modes.len(),
            "expected mostly environmental, got {modes:?}"
        );
    }

    #[test]
    fn fresh_csi_without_trend_classifies_micro() {
        let mut rng = DetRng::seed_from_u64(3);
        let mut cl = MobilityClassifier::new(ClassifierConfig::default());
        let mut last = None;
        for i in 0..10u64 {
            last = cl.on_frame_csi(i * PERIOD, &random_csi(&mut rng)).or(last);
            // ToF medians wander: no trend.
            cl.on_tof_median(10.0 + rng.normal(0.0, 0.4));
        }
        assert_eq!(last, Some(Classification::of(MobilityMode::Micro)));
        assert!(cl.tof_measurement_active());
    }

    #[test]
    fn fresh_csi_with_increasing_tof_classifies_macro_away() {
        let mut rng = DetRng::seed_from_u64(4);
        let mut cl = MobilityClassifier::new(ClassifierConfig::default());
        let mut tof = 10.0;
        let mut last = None;
        for i in 0..16u64 {
            last = cl.on_frame_csi(i * PERIOD, &random_csi(&mut rng)).or(last);
            if i % 2 == 1 {
                // One median per second (every other 500 ms sample).
                tof += 0.9;
                cl.on_tof_median(tof);
            }
        }
        assert_eq!(last, Some(Classification::macro_with(Direction::Away)));
    }

    #[test]
    fn fresh_csi_with_decreasing_tof_classifies_macro_towards() {
        let mut rng = DetRng::seed_from_u64(5);
        let mut cl = MobilityClassifier::new(ClassifierConfig::default());
        let mut tof = 50.0;
        let mut last = None;
        for i in 0..16u64 {
            last = cl.on_frame_csi(i * PERIOD, &random_csi(&mut rng)).or(last);
            if i % 2 == 1 {
                tof -= 0.9;
                cl.on_tof_median(tof);
            }
        }
        assert_eq!(last, Some(Classification::macro_with(Direction::Towards)));
    }

    #[test]
    fn tof_stops_when_returning_to_static() {
        let mut rng = DetRng::seed_from_u64(6);
        let mut cl = MobilityClassifier::new(ClassifierConfig::default());
        // Device mobility first.
        for i in 0..4u64 {
            cl.on_frame_csi(i * PERIOD, &random_csi(&mut rng));
        }
        assert!(cl.tof_measurement_active());
        // Then the channel stabilises.
        let base = random_csi(&mut rng);
        for i in 4..12u64 {
            cl.on_frame_csi(i * PERIOD, &noisy(&mut rng, &base, 0.01));
        }
        assert!(!cl.tof_measurement_active());
        assert_eq!(cl.current().unwrap().mode, MobilityMode::Static);
    }

    #[test]
    fn tof_medians_ignored_when_inactive() {
        let mut cl = MobilityClassifier::new(ClassifierConfig::default());
        for _ in 0..10 {
            cl.on_tof_median(42.0); // must not panic or accumulate
        }
        assert!(!cl.tof_measurement_active());
    }

    #[test]
    fn trend_history_cleared_on_restart() {
        let mut rng = DetRng::seed_from_u64(7);
        let mut cl = MobilityClassifier::new(ClassifierConfig::default());
        // Phase 1: device mobility with rising ToF.
        let mut tof = 10.0;
        for i in 0..12u64 {
            cl.on_frame_csi(i * PERIOD, &random_csi(&mut rng));
            tof += 0.9;
            cl.on_tof_median(tof);
        }
        assert_eq!(cl.current().unwrap().mode, MobilityMode::Macro);
        // Phase 2: static interlude stops ToF.
        let base = random_csi(&mut rng);
        for i in 12..20u64 {
            cl.on_frame_csi(i * PERIOD, &noisy(&mut rng, &base, 0.01));
        }
        // Phase 3: device mobility again — old trend must not leak: the
        // first device-mobility decisions are micro until a fresh window
        // fills.
        let c = cl.on_frame_csi(20 * PERIOD, &random_csi(&mut rng)).unwrap();
        assert_eq!(c.mode, MobilityMode::Micro);
    }

    #[test]
    #[should_panic(expected = "static threshold must exceed")]
    fn invalid_thresholds_panic() {
        let cfg = ClassifierConfig {
            thr_static: 0.5,
            thr_env: 0.9,
            ..ClassifierConfig::default()
        };
        MobilityClassifier::new(cfg);
    }

    #[test]
    fn display_formats() {
        assert_eq!(
            Classification::of(MobilityMode::Static).to_string(),
            "static"
        );
        assert_eq!(
            Classification::macro_with(Direction::Away).to_string(),
            "macro (away)"
        );
    }
}
