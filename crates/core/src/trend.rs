//! ToF trend detection (paper section 2.4).
//!
//! Under macro-mobility a walking user covers a metre-plus per second, so
//! successive per-second ToF medians drift monotonically; under
//! micro-mobility the medians wander randomly within the noise floor.
//! "Only if all the ToF values in the moving window suggest an increasing
//! or decreasing trend, we declare that the client is under
//! macro-mobility" — with the trend's sign giving the radial direction.

use mobisense_util::filter::SlidingWindow;

/// Outcome of trend detection over a ToF window.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Trend {
    /// ToF (distance) growing: client moving away from the AP.
    Increasing,
    /// ToF (distance) shrinking: client moving towards the AP.
    Decreasing,
    /// No consistent trend: micro-mobility.
    None,
}

/// Configuration of the trend detector.
#[derive(Clone, Copy, Debug)]
pub struct TrendConfig {
    /// Number of per-second median samples in the detection window.
    /// The paper settles on a 4 s window (Figure 6b), i.e. 4 medians
    /// plus the anchor sample.
    pub window: usize,
    /// Minimum total ToF change (clock cycles) across the window for a
    /// trend to count. Filters residual noise on the medians.
    pub min_delta_cycles: f64,
    /// Tolerated per-step regression (cycles): a step may move against
    /// the trend by at most this much ("suggests" a trend, rather than
    /// demanding strict monotonicity of noisy data).
    pub backstep_tolerance: f64,
}

impl Default for TrendConfig {
    fn default() -> Self {
        TrendConfig {
            window: 5, // 4 seconds of motion = 5 one-second medians
            min_delta_cycles: 1.5,
            backstep_tolerance: 1.1,
        }
    }
}

impl TrendConfig {
    /// A config whose window covers `secs` seconds of per-second medians.
    pub fn with_window_secs(mut self, secs: usize) -> Self {
        assert!(secs >= 1);
        self.window = secs + 1;
        self
    }
}

/// Classifies the trend of a full window of ToF medians.
pub fn detect_trend(samples: &[f64], cfg: &TrendConfig) -> Trend {
    if samples.len() < cfg.window {
        return Trend::None;
    }
    let w = &samples[samples.len() - cfg.window..];
    let delta = w[w.len() - 1] - w[0];
    if delta >= cfg.min_delta_cycles {
        let consistent = w.windows(2).all(|p| p[1] - p[0] > -cfg.backstep_tolerance);
        if consistent {
            return Trend::Increasing;
        }
    } else if delta <= -cfg.min_delta_cycles {
        let consistent = w.windows(2).all(|p| p[1] - p[0] < cfg.backstep_tolerance);
        if consistent {
            return Trend::Decreasing;
        }
    }
    Trend::None
}

/// Streaming trend detector over per-second ToF medians.
#[derive(Clone, Debug)]
pub struct TrendDetector {
    cfg: TrendConfig,
    window: SlidingWindow,
}

impl TrendDetector {
    /// Creates a detector with the given configuration.
    pub fn new(cfg: TrendConfig) -> Self {
        TrendDetector {
            window: SlidingWindow::new(cfg.window),
            cfg,
        }
    }

    /// The detector's configuration.
    pub fn config(&self) -> &TrendConfig {
        &self.cfg
    }

    /// Feeds one median ToF sample and returns the current trend.
    /// Returns [`Trend::None`] until the window fills.
    pub fn push(&mut self, median_cycles: f64) -> Trend {
        self.window.push(median_cycles);
        if !self.window.is_full() {
            return Trend::None;
        }
        detect_trend(&self.window.as_vec(), &self.cfg)
    }

    /// Current trend without feeding a sample.
    pub fn current(&self) -> Trend {
        if !self.window.is_full() {
            return Trend::None;
        }
        detect_trend(&self.window.as_vec(), &self.cfg)
    }

    /// True once enough samples have been collected to decide.
    pub fn is_warm(&self) -> bool {
        self.window.is_full()
    }

    /// Drops accumulated samples (ToF measurement stopped/restarted).
    pub fn reset(&mut self) {
        self.window.clear();
    }

    /// The window's contents oldest-first, for session snapshots.
    pub fn samples(&self) -> Vec<f64> {
        self.window.as_vec()
    }

    /// Reconstructs a detector holding `samples` (oldest-first). Excess
    /// samples beyond the configured window are trimmed oldest-first, so
    /// a state saved under a larger window restores safely.
    pub fn from_state(cfg: TrendConfig, samples: &[f64]) -> Self {
        let mut d = TrendDetector::new(cfg);
        for &x in samples {
            d.window.push(x);
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobisense_util::DetRng;

    fn cfg() -> TrendConfig {
        TrendConfig::default()
    }

    #[test]
    fn increasing_sequence_detected() {
        let s = [10.0, 11.0, 12.2, 13.0, 14.1];
        assert_eq!(detect_trend(&s, &cfg()), Trend::Increasing);
    }

    #[test]
    fn decreasing_sequence_detected() {
        let s = [20.0, 18.7, 17.9, 16.5, 15.0];
        assert_eq!(detect_trend(&s, &cfg()), Trend::Decreasing);
    }

    #[test]
    fn flat_sequence_is_none() {
        let s = [10.0, 10.3, 9.8, 10.1, 10.2];
        assert_eq!(detect_trend(&s, &cfg()), Trend::None);
    }

    #[test]
    fn small_total_change_is_none() {
        // Monotone but below min_delta: noise, not walking.
        let s = [10.0, 10.2, 10.4, 10.6, 10.8];
        assert_eq!(detect_trend(&s, &cfg()), Trend::None);
    }

    #[test]
    fn tolerates_small_backstep() {
        // One step regresses by 0.3 (< tolerance 0.5) but the walk is real.
        let s = [10.0, 11.5, 11.2, 12.5, 14.0];
        assert_eq!(detect_trend(&s, &cfg()), Trend::Increasing);
    }

    #[test]
    fn rejects_large_backstep() {
        // Total delta is large but one step regresses hard: not a walk.
        let s = [10.0, 14.0, 12.0, 15.0, 16.0];
        assert_eq!(detect_trend(&s, &cfg()), Trend::None);
    }

    #[test]
    fn tolerates_quantisation_backstep() {
        // Integer-quantised medians of a real walk: one step regresses by
        // exactly one cycle, within tolerance.
        let s = [13.0, 15.0, 14.0, 15.0, 16.0];
        assert_eq!(detect_trend(&s, &cfg()), Trend::Increasing);
    }

    #[test]
    fn short_window_is_none() {
        assert_eq!(detect_trend(&[1.0, 2.0], &cfg()), Trend::None);
    }

    #[test]
    fn streaming_detector_warms_up() {
        let mut d = TrendDetector::new(cfg());
        assert!(!d.is_warm());
        for (i, x) in [10.0, 11.0, 12.0, 13.0].iter().enumerate() {
            assert_eq!(d.push(*x), Trend::None, "sample {i} should not fire");
        }
        assert_eq!(d.push(14.0), Trend::Increasing);
        assert!(d.is_warm());
        assert_eq!(d.current(), Trend::Increasing);
    }

    #[test]
    fn streaming_detector_reset() {
        let mut d = TrendDetector::new(cfg());
        for x in [10.0, 11.0, 12.0, 13.0, 14.0] {
            d.push(x);
        }
        assert!(d.is_warm());
        d.reset();
        assert!(!d.is_warm());
        assert_eq!(d.current(), Trend::None);
    }

    #[test]
    fn random_walk_rarely_trends() {
        // Statistical sanity: white noise of the median-filter residual
        // magnitude must almost never fire the detector.
        let mut rng = DetRng::seed_from_u64(42);
        let mut d = TrendDetector::new(cfg());
        let mut fired = 0;
        let n = 2000;
        for _ in 0..n {
            // sigma 0.45 cycles: the residual noise of a per-second
            // median over fifty 2-cycle-sigma raw readings, plus
            // integer quantisation.
            if d.push(rng.normal(10.0, 0.45)) != Trend::None {
                fired += 1;
            }
        }
        let rate = fired as f64 / n as f64;
        assert!(rate < 0.08, "false trend rate {rate}");
    }

    #[test]
    fn walking_drift_fires_reliably() {
        // 0.7 cycles/s drift (1.2 m/s walk at 88 MHz) with 0.5-cycle
        // median noise: the detector should fire most of the time once
        // warm.
        let mut rng = DetRng::seed_from_u64(43);
        let mut d = TrendDetector::new(cfg());
        let mut fired = 0;
        let mut total = 0;
        for i in 0..200 {
            let x = 10.0 + 0.7 * i as f64 + rng.normal(0.0, 0.5);
            let t = d.push(x);
            if i >= 4 {
                total += 1;
                if t == Trend::Increasing {
                    fired += 1;
                }
            }
        }
        let rate = fired as f64 / total as f64;
        assert!(rate > 0.75, "detection rate {rate}");
    }

    #[test]
    fn window_secs_builder() {
        let c = TrendConfig::default().with_window_secs(6);
        assert_eq!(c.window, 7);
    }
}
