//! The mobility-aware protocol policy — the paper's Table 2.
//!
//! Each classified mobility state maps to a parameter set for the four
//! protocols the paper optimises. The numbers below are the paper's
//! Table 2 values (the source text we reproduce from lost '0'/'1' digits
//! in OCR; values were reconstructed from the table plus the prose in
//! sections 3-6, and EXPERIMENTS.md records the reconstruction).

use mobisense_mobility::{Direction, MobilityMode};
use mobisense_util::units::{Nanos, MILLISECOND};

use crate::classifier::Classification;

/// Per-mobility-state protocol parameters (one column of Table 2).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MobilityPolicy {
    /// Should the controller prepare / encourage a roam to a better AP?
    /// Only when the client is moving away from its current AP.
    pub encourage_roaming: bool,
    /// Rate-adaptation probe interval: how long the current rate must
    /// have been successful before probing the next higher rate.
    pub probe_interval: Nanos,
    /// Smoothing factor `alpha` of the PER low-pass filter (paper Eq. 2).
    /// Larger = more weight on recent frames.
    pub per_smoothing: f64,
    /// Retries at the current bit-rate after a failed frame before
    /// stepping down (section 4.2, optimisation 1).
    pub rate_retries: u32,
    /// Maximum A-MPDU aggregation time.
    pub aggregation_limit: Nanos,
    /// SU-beamforming CSI feedback (CV update) period.
    pub bf_feedback_period: Nanos,
    /// MU-MIMO CSI feedback (CV update) period.
    pub mu_mimo_feedback_period: Nanos,
}

impl MobilityPolicy {
    /// The Table-2 column for a classified mobility state.
    pub fn for_classification(c: Classification) -> Self {
        match (c.mode, c.direction) {
            (MobilityMode::Static, _) => MobilityPolicy {
                encourage_roaming: false,
                probe_interval: 500 * MILLISECOND,
                per_smoothing: 1.0 / 16.0,
                rate_retries: 2,
                aggregation_limit: 8 * MILLISECOND,
                bf_feedback_period: 200 * MILLISECOND,
                mu_mimo_feedback_period: 200 * MILLISECOND,
            },
            (MobilityMode::Environmental, _) => MobilityPolicy {
                encourage_roaming: false,
                probe_interval: 500 * MILLISECOND,
                per_smoothing: 1.0 / 12.0,
                rate_retries: 2,
                aggregation_limit: 8 * MILLISECOND,
                bf_feedback_period: 50 * MILLISECOND,
                mu_mimo_feedback_period: 50 * MILLISECOND,
            },
            (MobilityMode::Micro, _) => MobilityPolicy {
                encourage_roaming: false,
                probe_interval: 300 * MILLISECOND,
                per_smoothing: 1.0 / 4.0,
                rate_retries: 1,
                aggregation_limit: 2 * MILLISECOND,
                bf_feedback_period: 100 * MILLISECOND,
                mu_mimo_feedback_period: 100 * MILLISECOND,
            },
            (MobilityMode::Macro, Some(Direction::Away)) => MobilityPolicy {
                encourage_roaming: true,
                probe_interval: 1000 * MILLISECOND,
                per_smoothing: 1.0 / 3.0,
                rate_retries: 0,
                aggregation_limit: 2 * MILLISECOND,
                bf_feedback_period: 50 * MILLISECOND,
                mu_mimo_feedback_period: 20 * MILLISECOND,
            },
            // Macro towards the AP — and macro with unknown direction,
            // which we treat like "towards" minus the aggressive probing.
            (MobilityMode::Macro, d) => MobilityPolicy {
                encourage_roaming: false,
                probe_interval: if d == Some(Direction::Towards) {
                    100 * MILLISECOND
                } else {
                    300 * MILLISECOND
                },
                per_smoothing: 1.0 / 3.0,
                rate_retries: 1,
                aggregation_limit: 2 * MILLISECOND,
                bf_feedback_period: 50 * MILLISECOND,
                mu_mimo_feedback_period: 20 * MILLISECOND,
            },
        }
    }

    /// The mobility-oblivious defaults of the paper's baseline AP:
    /// stock Atheros rate adaptation (`alpha = 1/8`, no retry tweak, fixed
    /// probe interval), a statically configured 4 ms aggregation time and
    /// 200 ms CSI feedback for both beamforming flavours.
    pub fn oblivious_default() -> Self {
        MobilityPolicy {
            encourage_roaming: false,
            probe_interval: 500 * MILLISECOND,
            per_smoothing: 1.0 / 8.0,
            rate_retries: 0,
            aggregation_limit: 4 * MILLISECOND,
            bf_feedback_period: 200 * MILLISECOND,
            mu_mimo_feedback_period: 200 * MILLISECOND,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_states() -> Vec<Classification> {
        vec![
            Classification::of(MobilityMode::Static),
            Classification::of(MobilityMode::Environmental),
            Classification::of(MobilityMode::Micro),
            Classification::macro_with(Direction::Away),
            Classification::macro_with(Direction::Towards),
        ]
    }

    #[test]
    fn only_moving_away_triggers_roaming() {
        for c in all_states() {
            let p = MobilityPolicy::for_classification(c);
            assert_eq!(
                p.encourage_roaming,
                c.direction == Some(Direction::Away),
                "{c}"
            );
        }
    }

    #[test]
    fn smoothing_grows_with_mobility_intensity() {
        let alpha = |c: Classification| MobilityPolicy::for_classification(c).per_smoothing;
        let s = alpha(Classification::of(MobilityMode::Static));
        let e = alpha(Classification::of(MobilityMode::Environmental));
        let mi = alpha(Classification::of(MobilityMode::Micro));
        let ma = alpha(Classification::macro_with(Direction::Away));
        assert!(s < e && e < mi && mi < ma, "{s} {e} {mi} {ma}");
        // Exact Table 2 values.
        assert_eq!(s, 1.0 / 16.0);
        assert_eq!(e, 1.0 / 12.0);
        assert_eq!(mi, 1.0 / 4.0);
        assert_eq!(ma, 1.0 / 3.0);
    }

    #[test]
    fn probing_aggressive_towards_conservative_away() {
        let towards =
            MobilityPolicy::for_classification(Classification::macro_with(Direction::Towards));
        let away = MobilityPolicy::for_classification(Classification::macro_with(Direction::Away));
        let stat = MobilityPolicy::for_classification(Classification::of(MobilityMode::Static));
        assert!(towards.probe_interval < stat.probe_interval);
        assert!(away.probe_interval > stat.probe_interval);
    }

    #[test]
    fn aggregation_follows_coherence_time() {
        let lim = |c: Classification| MobilityPolicy::for_classification(c).aggregation_limit;
        assert_eq!(
            lim(Classification::of(MobilityMode::Static)),
            8 * MILLISECOND
        );
        assert_eq!(
            lim(Classification::of(MobilityMode::Environmental)),
            8 * MILLISECOND
        );
        assert_eq!(
            lim(Classification::of(MobilityMode::Micro)),
            2 * MILLISECOND
        );
        assert_eq!(
            lim(Classification::macro_with(Direction::Away)),
            2 * MILLISECOND
        );
    }

    #[test]
    fn feedback_faster_under_more_mobility() {
        let bf = |c: Classification| MobilityPolicy::for_classification(c).bf_feedback_period;
        assert!(
            bf(Classification::of(MobilityMode::Static))
                > bf(Classification::of(MobilityMode::Micro))
        );
        assert!(
            bf(Classification::of(MobilityMode::Micro))
                > bf(Classification::macro_with(Direction::Away))
        );
        // MU-MIMO tracks macro clients even faster.
        let mu = MobilityPolicy::for_classification(Classification::macro_with(Direction::Away))
            .mu_mimo_feedback_period;
        assert_eq!(mu, 20 * MILLISECOND);
    }

    #[test]
    fn away_never_retries_failed_rate() {
        let p = MobilityPolicy::for_classification(Classification::macro_with(Direction::Away));
        assert_eq!(p.rate_retries, 0);
        let s = MobilityPolicy::for_classification(Classification::of(MobilityMode::Static));
        assert_eq!(s.rate_retries, 2);
    }

    #[test]
    fn oblivious_default_matches_stock_atheros() {
        let d = MobilityPolicy::oblivious_default();
        assert_eq!(d.per_smoothing, 1.0 / 8.0);
        assert_eq!(d.aggregation_limit, 4 * MILLISECOND);
        assert_eq!(d.bf_feedback_period, 200 * MILLISECOND);
        assert!(!d.encourage_roaming);
    }

    #[test]
    fn macro_unknown_direction_is_sane() {
        let c = Classification::of(MobilityMode::Macro);
        let p = MobilityPolicy::for_classification(c);
        assert!(!p.encourage_roaming);
        assert_eq!(p.aggregation_limit, 2 * MILLISECOND);
    }
}
