//! Ground-truth mobility scenarios: the glue binding a trajectory, an
//! environment mover field and a ray channel.
//!
//! Each scenario corresponds to one of the paper's experimental settings
//! (section 2.1): the phone parked in a quiet lab, on a cafeteria table at
//! lunch hour, handled within a metre, or carried on a walk. Every
//! experiment in the workspace is driven by [`Scenario::observe`], which
//! advances the world to a timestamp and returns everything an AP can
//! measure (CSI, RSSI, true distance for the ToF model) along with the
//! ground truth the AP is trying to infer.

use mobisense_mobility::movers::{EnvIntensity, MoverField};
use mobisense_mobility::trajectory::{
    CircularOrbit, MicroWander, StaticPose, Trajectory, WaypointWalk,
};
use mobisense_mobility::{mode, Direction, GroundTruth, MobilityMode};
use mobisense_phy::channel::RayChannel;
use mobisense_phy::config::ChannelConfig;
use mobisense_phy::csi::Csi;
use mobisense_util::units::Nanos;
use mobisense_util::{DetRng, Vec2};

/// The experimental settings of paper section 2.1, plus the circular
/// orbit from the limitations discussion (section 9).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScenarioKind {
    /// Phone parked, quiet environment.
    Static,
    /// Phone parked, people moving around it.
    Environmental(EnvIntensity),
    /// Phone handled within ~1 m (natural gestures).
    Micro,
    /// User walks radially towards the AP.
    MacroTowards,
    /// User walks radially away from the AP.
    MacroAway,
    /// User walks between random waypoints.
    MacroRandom,
    /// User orbits the AP at constant radius — the classifier's known
    /// failure mode.
    Orbit,
}

impl ScenarioKind {
    /// The ground-truth mobility mode of this scenario.
    pub fn true_mode(self) -> MobilityMode {
        match self {
            ScenarioKind::Static => MobilityMode::Static,
            ScenarioKind::Environmental(i) => {
                if i == EnvIntensity::Quiet {
                    MobilityMode::Static
                } else {
                    MobilityMode::Environmental
                }
            }
            ScenarioKind::Micro => MobilityMode::Micro,
            ScenarioKind::MacroTowards
            | ScenarioKind::MacroAway
            | ScenarioKind::MacroRandom
            | ScenarioKind::Orbit => MobilityMode::Macro,
        }
    }

    /// Short label for benchmark output.
    pub fn label(self) -> &'static str {
        match self {
            ScenarioKind::Static => "static",
            ScenarioKind::Environmental(EnvIntensity::Quiet) => "env-quiet",
            ScenarioKind::Environmental(EnvIntensity::Weak) => "env-weak",
            ScenarioKind::Environmental(EnvIntensity::Strong) => "env-strong",
            ScenarioKind::Micro => "micro",
            ScenarioKind::MacroTowards => "macro-towards",
            ScenarioKind::MacroAway => "macro-away",
            ScenarioKind::MacroRandom => "macro-random",
            ScenarioKind::Orbit => "orbit",
        }
    }
}

/// Geometry and channel parameters of a scenario.
#[derive(Clone, Debug)]
pub struct ScenarioConfig {
    /// Channel / radio parameters.
    pub channel: ChannelConfig,
    /// Room bounding box, low corner.
    pub room_lo: Vec2,
    /// Room bounding box, high corner.
    pub room_hi: Vec2,
    /// AP position.
    pub ap_pos: Vec2,
    /// Static reflectors (walls, furniture).
    pub n_static_reflectors: usize,
    /// Mobile reflectors (people) — driven by the mover field.
    pub n_mobile_reflectors: usize,
    /// Mean walking speed for macro scenarios (m/s).
    pub walk_speed: f64,
    /// Micro-mobility confinement radius (m).
    pub micro_radius: f64,
    /// Radial speed (m/s) above which macro ground truth gets a
    /// towards/away direction label.
    pub direction_threshold_mps: f64,
    /// Start-distance range (m) for radial towards/away walks.
    pub radial_range: (f64, f64),
    /// Shadow-fading std-dev (dB) while the device moves. Body blockage
    /// and obstacle geometry make a handheld walking link swing several
    /// dB on sub-second timescales — the bursty channel that frame-based
    /// rate adaptation struggles with.
    pub shadow_sigma_moving_db: f64,
    /// Shadow-fading std-dev (dB) for a parked device (people crossing
    /// the line of sight).
    pub shadow_sigma_static_db: f64,
    /// Shadow-fading correlation time (s).
    pub shadow_tau_s: f64,
    /// Rate (events/s) of body-blockage dips while the device moves.
    /// A walking user's torso periodically shadows the line of sight,
    /// producing deep, short fades that frame-based rate control reacts
    /// to — the transient losses the paper's retry-before-downshift
    /// optimisation targets (section 4.2).
    pub blockage_rate_hz: f64,
    /// Depth range of a blockage dip (dB).
    pub blockage_depth_db: (f64, f64),
    /// Duration range of a blockage dip (s).
    pub blockage_secs: (f64, f64),
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            channel: ChannelConfig::default(),
            room_lo: Vec2::new(0.0, 0.0),
            room_hi: Vec2::new(30.0, 20.0),
            ap_pos: Vec2::new(15.0, 10.0),
            n_static_reflectors: 20,
            n_mobile_reflectors: 8,
            walk_speed: 1.2,
            micro_radius: 0.5,
            direction_threshold_mps: 0.3,
            radial_range: (12.0, 16.0),
            shadow_sigma_moving_db: 2.5,
            shadow_sigma_static_db: 0.8,
            shadow_tau_s: 0.6,
            blockage_rate_hz: 0.2,
            blockage_depth_db: (6.0, 12.0),
            blockage_secs: (0.15, 0.45),
        }
    }
}

/// What the AP observes about the client at one instant, plus the ground
/// truth a benchmark compares against.
#[derive(Clone, Debug)]
pub struct Observation {
    /// Observation timestamp.
    pub at: Nanos,
    /// True client position.
    pub pos: Vec2,
    /// Client antenna-array orientation (radians).
    pub heading: f64,
    /// Measured CSI (estimation noise included).
    pub csi: Csi,
    /// Reported RSSI (dBm, quantised).
    pub rssi_dbm: f64,
    /// True mean link SNR (dB).
    pub snr_db: f64,
    /// True AP-client distance (m) — input to the ToF measurement model.
    pub distance_m: f64,
    /// Instantaneous client speed (m/s).
    pub speed_mps: f64,
    /// Ground truth mobility state.
    pub truth: GroundTruth,
}

/// A steppable ground-truth world: one AP, one client, one reflector
/// field.
pub struct Scenario {
    kind: ScenarioKind,
    cfg: ScenarioConfig,
    channel: RayChannel,
    trajectory: Box<dyn Trajectory + Send>,
    movers: MoverField,
    mobile_idx: Vec<usize>,
    rng: DetRng,
    prev: Option<(Nanos, Vec2)>,
    shadow_db: f64,
    shadow_rng: DetRng,
    shadow_t: Nanos,
    blockage_until: Nanos,
    blockage_depth: f64,
}

impl Scenario {
    /// Builds a scenario of the given kind with default geometry.
    pub fn new(kind: ScenarioKind, seed: u64) -> Self {
        Scenario::with_config(kind, ScenarioConfig::default(), seed)
    }

    /// Builds a scenario with explicit geometry/channel parameters.
    pub fn with_config(kind: ScenarioKind, cfg: ScenarioConfig, seed: u64) -> Self {
        let mut rng = DetRng::seed_from_u64(seed);
        let mut geom_rng = rng.fork("geometry");
        let channel = RayChannel::with_random_reflectors(
            cfg.channel.clone(),
            cfg.ap_pos,
            cfg.room_lo,
            cfg.room_hi,
            cfg.n_static_reflectors,
            cfg.n_mobile_reflectors,
            &mut geom_rng,
        );
        let mobile_idx: Vec<usize> = channel
            .reflectors()
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.mobile.then_some(i))
            .collect();

        let intensity = match kind {
            ScenarioKind::Environmental(i) => i,
            _ => EnvIntensity::Quiet,
        };
        // The client anchor is drawn before the mover field so that
        // environmental movers can be placed around the client — the
        // paper's environmental setting is a cafeteria *table*: the
        // moving people are within a few metres of the device.
        let anchor = random_point_at_range(&cfg, &mut rng, 4.0, 12.0);
        let (mover_lo, mover_hi) = match kind {
            ScenarioKind::Environmental(_) => (
                (anchor - Vec2::new(6.0, 6.0)).clamp_box(cfg.room_lo, cfg.room_hi),
                (anchor + Vec2::new(6.0, 6.0)).clamp_box(cfg.room_lo, cfg.room_hi),
            ),
            _ => (cfg.room_lo, cfg.room_hi),
        };
        let movers = MoverField::new(
            mover_lo,
            mover_hi,
            mobile_idx.len(),
            intensity,
            rng.fork("movers"),
        );

        let trajectory = Self::build_trajectory(kind, &cfg, anchor, &mut rng);

        Scenario {
            kind,
            cfg,
            channel,
            trajectory,
            movers,
            mobile_idx,
            rng: {
                let mut r = DetRng::seed_from_u64(seed);
                r.fork("measurement")
            },
            prev: None,
            shadow_db: 0.0,
            shadow_rng: {
                let mut r = DetRng::seed_from_u64(seed ^ 0x73686164);
                r.fork("shadow")
            },
            shadow_t: 0,
            blockage_until: 0,
            blockage_depth: 0.0,
        }
    }

    /// Advances the Ornstein-Uhlenbeck shadow-fading process to `t`.
    fn advance_shadow(&mut self, t: Nanos, moving: bool) -> f64 {
        let sigma = if moving {
            self.cfg.shadow_sigma_moving_db
        } else {
            self.cfg.shadow_sigma_static_db
        };
        if sigma <= 0.0 {
            self.shadow_t = t;
            self.shadow_db = 0.0;
            return 0.0;
        }
        let tau = self.cfg.shadow_tau_s.max(1e-3);
        let mut now = self.shadow_t;
        const STEP: Nanos = 50 * mobisense_util::units::MILLISECOND;
        while now + STEP <= t {
            now += STEP;
            let dt = STEP as f64 / 1e9;
            let decay = (-dt / tau).exp();
            let noise = sigma * (1.0 - decay * decay).sqrt();
            self.shadow_db = self.shadow_db * decay + self.shadow_rng.normal(0.0, noise);
            // Bursty body blockage while moving.
            if moving
                && now >= self.blockage_until
                && self.shadow_rng.chance(self.cfg.blockage_rate_hz * dt)
            {
                let (d_lo, d_hi) = self.cfg.blockage_depth_db;
                let (s_lo, s_hi) = self.cfg.blockage_secs;
                self.blockage_depth = self.shadow_rng.uniform_in(d_lo, d_hi);
                self.blockage_until = now
                    + mobisense_util::units::secs_to_nanos(self.shadow_rng.uniform_in(s_lo, s_hi));
            }
        }
        self.shadow_t = now;
        let blocked = now < self.blockage_until;
        self.shadow_db - if blocked { self.blockage_depth } else { 0.0 }
    }

    fn build_trajectory(
        kind: ScenarioKind,
        cfg: &ScenarioConfig,
        anchor: Vec2,
        rng: &mut DetRng,
    ) -> Box<dyn Trajectory + Send> {
        let ap = cfg.ap_pos;
        match kind {
            ScenarioKind::Static | ScenarioKind::Environmental(_) => Box::new(StaticPose::new(
                anchor,
                rng.uniform_in(0.0, std::f64::consts::TAU),
            )),
            ScenarioKind::Micro => Box::new(MicroWander::new(
                anchor,
                cfg.micro_radius,
                rng.fork("micro"),
            )),
            ScenarioKind::MacroTowards => {
                let (lo_r, hi_r) = cfg.radial_range;
                let far = random_point_at_range(cfg, rng, lo_r, hi_r);
                let dir = (far - ap).normalized();
                let near = ap + dir * 2.5;
                Box::new(WaypointWalk::between(
                    far,
                    near,
                    cfg.walk_speed,
                    rng.fork("walk"),
                ))
            }
            ScenarioKind::MacroAway => {
                let (lo_r, hi_r) = cfg.radial_range;
                let far = random_point_at_range(cfg, rng, lo_r, hi_r);
                let dir = (far - ap).normalized();
                let near = ap + dir * 2.5;
                Box::new(WaypointWalk::between(
                    near,
                    far,
                    cfg.walk_speed,
                    rng.fork("walk"),
                ))
            }
            ScenarioKind::MacroRandom => {
                // Office walks have long straight legs (corridors): keep
                // consecutive waypoints well apart so radial trends get
                // time to establish between turns.
                let mut wp_rng = rng.fork("waypoints");
                let mut pts: Vec<Vec2> = Vec::with_capacity(8);
                while pts.len() < 8 {
                    let p = random_point_at_range_with(
                        &cfg.room_lo,
                        &cfg.room_hi,
                        ap,
                        &mut wp_rng,
                        2.0,
                        17.0,
                    );
                    if pts.last().is_none_or(|l| l.dist(p) >= 14.0) {
                        pts.push(p);
                    }
                }
                Box::new(WaypointWalk::new(pts, cfg.walk_speed, rng.fork("walk")).looping())
            }
            ScenarioKind::Orbit => {
                let radius = rng.uniform_in(5.0, 8.0);
                let phase = rng.uniform_in(0.0, std::f64::consts::TAU);
                Box::new(CircularOrbit::new(ap, radius, cfg.walk_speed, phase))
            }
        }
    }

    /// The scenario kind.
    pub fn kind(&self) -> ScenarioKind {
        self.kind
    }

    /// The AP's position.
    pub fn ap_pos(&self) -> Vec2 {
        self.cfg.ap_pos
    }

    /// The underlying ray channel (e.g. for beamforming experiments that
    /// need noiseless CSI at an arbitrary pose).
    pub fn channel(&self) -> &RayChannel {
        &self.channel
    }

    /// Advances the world to time `t` (non-decreasing) and returns the
    /// AP's view of the client plus ground truth.
    pub fn observe(&mut self, t: Nanos) -> Observation {
        // Move the environment, then mirror the mover positions onto the
        // channel's mobile reflectors.
        let positions = self.movers.advance_to(t);
        for (&idx, &p) in self.mobile_idx.iter().zip(&positions) {
            self.channel.reflectors_mut()[idx].pos = p;
        }

        let pose = self.trajectory.pose_at(t);
        // People crossing the line of sight shake the link budget too:
        // an active environmental scenario gets the moving-grade shadow
        // process even though the device itself is parked (the paper's
        // Figure 1 point — environmental RSSI variation rivals device
        // motion).
        let env_active = matches!(
            self.kind,
            ScenarioKind::Environmental(i) if i != EnvIntensity::Quiet
        );
        let shadow = self.advance_shadow(t, pose.speed > 0.05 || env_active);
        let true_csi = self.channel.csi_at(pose.pos, pose.heading);
        let snr_db = self.channel.snr_db(&true_csi) + shadow;
        let csi = self.channel.with_estimation_noise(&true_csi, &mut self.rng);
        let rssi_dbm = (true_csi.rx_power_dbm(self.cfg.channel.tx_power_dbm)
            + shadow
            + self.rng.normal(0.0, self.cfg.channel.rssi_noise_db))
        .round();
        let distance_m = self.channel.distance_to(pose.pos);

        let truth = self.ground_truth(t, pose.pos, pose.speed);
        self.prev = Some((t, pose.pos));

        Observation {
            at: t,
            pos: pose.pos,
            heading: pose.heading,
            csi,
            rssi_dbm,
            snr_db,
            distance_m,
            speed_mps: pose.speed,
            truth,
        }
    }

    fn ground_truth(&self, t: Nanos, pos: Vec2, speed: f64) -> GroundTruth {
        let mode = self.kind.true_mode();
        if mode != MobilityMode::Macro {
            return GroundTruth::of(mode);
        }
        // A finished walk is a parked device: the ground truth follows
        // what the user is doing, not the scenario label.
        if speed < 0.05 && self.kind != ScenarioKind::Orbit {
            return GroundTruth::of(MobilityMode::Static);
        }
        // Direction from radial velocity since the last observation.
        let direction = match self.prev {
            Some((pt, ppos)) if t > pt => {
                let dt = (t - pt) as f64 / 1e9;
                mode::radial_direction(
                    ppos,
                    pos,
                    self.cfg.ap_pos,
                    self.cfg.direction_threshold_mps * dt,
                )
            }
            _ => match self.kind {
                ScenarioKind::MacroTowards => Some(Direction::Towards),
                ScenarioKind::MacroAway => Some(Direction::Away),
                _ => None,
            },
        };
        GroundTruth { mode, direction }
    }
}

fn random_point_at_range(cfg: &ScenarioConfig, rng: &mut DetRng, min_d: f64, max_d: f64) -> Vec2 {
    random_point_at_range_with(&cfg.room_lo, &cfg.room_hi, cfg.ap_pos, rng, min_d, max_d)
}

/// Rejection-samples a point in the room whose distance to `ap` lies in
/// `[min_d, max_d]`, falling back to clamped ring placement if the box is
/// too tight.
fn random_point_at_range_with(
    lo: &Vec2,
    hi: &Vec2,
    ap: Vec2,
    rng: &mut DetRng,
    min_d: f64,
    max_d: f64,
) -> Vec2 {
    for _ in 0..256 {
        let p = rng.point_in_box(*lo, *hi);
        let d = p.dist(ap);
        if d >= min_d && d <= max_d {
            return p;
        }
    }
    // Fallback: pick a direction and clamp the ring point into the room.
    let dir = rng.unit_vector();
    (ap + dir * rng.uniform_in(min_d, max_d)).clamp_box(*lo, *hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobisense_phy::csi::csi_similarity;
    use mobisense_util::units::{MILLISECOND, SECOND};

    #[test]
    fn static_scenario_csi_stays_similar() {
        let mut s = Scenario::new(ScenarioKind::Static, 1);
        let a = s.observe(0);
        let b = s.observe(500 * MILLISECOND);
        let sim = csi_similarity(&a.csi, &b.csi);
        assert!(sim > 0.97, "static similarity {sim}");
        assert_eq!(a.truth.mode, MobilityMode::Static);
        assert_eq!(a.distance_m, b.distance_m);
    }

    #[test]
    fn macro_scenario_decorrelates_and_moves() {
        let mut s = Scenario::new(ScenarioKind::MacroAway, 2);
        let a = s.observe(0);
        let b = s.observe(2 * SECOND);
        let sim = csi_similarity(&a.csi, &b.csi);
        assert!(sim < 0.7, "macro similarity {sim}");
        assert!(b.distance_m > a.distance_m + 1.0);
        assert_eq!(b.truth.mode, MobilityMode::Macro);
        assert_eq!(b.truth.direction, Some(Direction::Away));
    }

    #[test]
    fn macro_towards_approaches() {
        let mut s = Scenario::new(ScenarioKind::MacroTowards, 3);
        let a = s.observe(0);
        let b = s.observe(4 * SECOND);
        assert!(b.distance_m < a.distance_m - 2.0);
        assert_eq!(b.truth.direction, Some(Direction::Towards));
    }

    #[test]
    fn environmental_scenario_partially_decorrelates() {
        let mut s = Scenario::new(ScenarioKind::Environmental(EnvIntensity::Strong), 4);
        // Warm the movers, then compare across a sampling period.
        let mut sims = Vec::new();
        let mut prev = s.observe(0);
        for i in 1..=20u64 {
            let cur = s.observe(i * 500 * MILLISECOND);
            sims.push(csi_similarity(&prev.csi, &cur.csi));
            prev = cur;
        }
        let mean = mobisense_util::stats::mean(&sims).unwrap();
        assert!(
            mean < 0.99 && mean > 0.4,
            "environmental mean similarity {mean} ({sims:?})"
        );
        // Device is parked: distance constant.
        assert_eq!(prev.truth.mode, MobilityMode::Environmental);
    }

    #[test]
    fn micro_scenario_confined_but_decorrelated() {
        let mut s = Scenario::new(ScenarioKind::Micro, 5);
        let a = s.observe(0);
        let mut max_move: f64 = 0.0;
        let mut prev = a.clone();
        let mut sims = Vec::new();
        for i in 1..=30u64 {
            let cur = s.observe(i * 500 * MILLISECOND);
            max_move = max_move.max(cur.pos.dist(a.pos));
            sims.push(csi_similarity(&prev.csi, &cur.csi));
            prev = cur;
        }
        assert!(max_move < 1.2, "micro escaped: {max_move} m");
        let mean = mobisense_util::stats::mean(&sims).unwrap();
        assert!(mean < 0.8, "micro similarity too high: {mean}");
    }

    #[test]
    fn orbit_keeps_distance_but_decorrelates() {
        let mut s = Scenario::new(ScenarioKind::Orbit, 6);
        let a = s.observe(0);
        let b = s.observe(5 * SECOND);
        assert!((a.distance_m - b.distance_m).abs() < 0.1);
        assert!(csi_similarity(&a.csi, &b.csi) < 0.7);
        assert_eq!(b.truth.mode, MobilityMode::Macro);
        assert_eq!(b.truth.direction, None, "orbit has no radial direction");
    }

    #[test]
    fn scenarios_are_reproducible() {
        let mut a = Scenario::new(ScenarioKind::MacroRandom, 7);
        let mut b = Scenario::new(ScenarioKind::MacroRandom, 7);
        for i in 0..10u64 {
            let oa = a.observe(i * SECOND);
            let ob = b.observe(i * SECOND);
            assert_eq!(oa.pos, ob.pos);
            assert_eq!(oa.rssi_dbm, ob.rssi_dbm);
            assert_eq!(oa.csi, ob.csi);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Scenario::new(ScenarioKind::Static, 8);
        let mut b = Scenario::new(ScenarioKind::Static, 9);
        assert_ne!(a.observe(0).pos, b.observe(0).pos);
    }

    #[test]
    fn snr_in_plausible_indoor_band() {
        for seed in 0..5 {
            let mut s = Scenario::new(ScenarioKind::Static, 100 + seed);
            let o = s.observe(0);
            assert!(o.snr_db > 8.0 && o.snr_db < 70.0, "snr {}", o.snr_db);
        }
    }

    #[test]
    fn labels_cover_kinds() {
        assert_eq!(ScenarioKind::MacroAway.label(), "macro-away");
        assert_eq!(
            ScenarioKind::Environmental(EnvIntensity::Strong).label(),
            "env-strong"
        );
        assert_eq!(
            ScenarioKind::Environmental(EnvIntensity::Quiet).true_mode(),
            MobilityMode::Static
        );
    }
}
