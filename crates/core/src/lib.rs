//! # mobisense-core
//!
//! The paper's primary contribution: AP-side classification of a WiFi
//! client's mobility mode from PHY-layer information only — no client
//! modification, no sensors — plus the policy engine that turns the
//! classified mode into protocol parameters.
//!
//! The pipeline (paper Figure 5):
//!
//! ```text
//!   CSI from data/ACK exchange ──► similarity S_i of consecutive samples
//!        S̄ > Thr_sta (0.98) ──► STATIC          (stop ToF measurement)
//!        S̄ > Thr_env (0.70) ──► ENVIRONMENTAL   (stop ToF measurement)
//!        otherwise          ──► device mobility (start ToF measurement)
//!             ToF medians trending up   ──► MACRO, moving away
//!             ToF medians trending down ──► MACRO, moving towards
//!             no trend                  ──► MICRO
//! ```
//!
//! * [`similarity`] — CSI sampling and the Equation-(1) similarity tracker.
//! * [`trend`] — the ToF moving-window trend detector.
//! * [`classifier`] — the full state machine, producing a
//!   [`classifier::Classification`] each CSI sampling period.
//! * [`policy`] — the paper's Table 2: per-mode protocol parameters for
//!   roaming, rate adaptation, frame aggregation, beamforming and MU-MIMO.
//! * [`scenario`] — glue that binds a mobility trajectory, an environment
//!   mover field and a ray channel into a steppable ground-truth scenario,
//!   used by every experiment in the workspace.
//! * [`pipeline`] — the end-to-end harness (scenario -> classifier ->
//!   confusion matrix) behind the paper's Table 1 and Figure 6.
//! * [`aoa_ext`] — the paper's proposed future-work extension
//!   (section 9): AoA bearing tracking that catches a client circling
//!   the AP, the base classifier's acknowledged blind spot.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aoa_ext;
pub mod classifier;
pub mod pipeline;
pub mod policy;
pub mod scenario;
pub mod similarity;
pub mod trend;

pub use classifier::{Classification, ClassifierConfig, ClassifierState, MobilityClassifier};
pub use pipeline::{PipelineConfig, PipelineSession, SessionState};
pub use policy::MobilityPolicy;
pub use scenario::{Scenario, ScenarioKind};
pub use similarity::SimilarityState;
