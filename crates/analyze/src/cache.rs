//! Incremental lex cache: warm runs skip re-lexing unchanged files.
//!
//! Lexing is the analyzer's hot loop — every byte of every file walks
//! the string/comment state machine. The cache stores, per file, a
//! content hash (FNV-1a 64) plus everything [`crate::lex`] computed
//! that cannot be recovered from the raw text alone:
//!
//! * the **blank spans** — byte ranges the lexer blanked (comments,
//!   string/char literal bodies). The code view is the source with
//!   those spans re-blanked, so storing the diff costs a few bytes per
//!   literal instead of a second copy of the file;
//! * the **test-line map**, run-length encoded;
//! * the **line comments** (line, standalone flag, text).
//!
//! On a warm run, a file whose hash matches is reconstructed from its
//! entry without touching the lexer; the item parse (cheap, pure in
//! the code view) is recomputed. [`CacheStats`] reports how many files
//! were re-lexed — the CI smoke step asserts a no-change second run
//! reports zero.
//!
//! The format is a versioned line-based text file. Loading is
//! tolerant: any malformed or version-mismatched cache is discarded
//! wholesale and the run proceeds cold — a cache can never make the
//! analyzer wrong, only slower.

use std::fs;
use std::io;
use std::path::Path;

use crate::lexer::{Lexed, LineComment};
use crate::{collect_sources, parse, SourceFile, Workspace};

/// Format marker; bump on any layout change.
const HEADER: &str = "mobisense-analyze-cache v1";

/// What the cache did for one run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Files loaded.
    pub files: usize,
    /// Files lexed from scratch (changed, new, or no cache).
    pub relexed: usize,
    /// Files reconstructed from a matching cache entry.
    pub hits: usize,
}

/// One file's cached lex output.
#[derive(Clone, Debug, PartialEq, Eq)]
struct Entry {
    hash: u64,
    blanks: Vec<(usize, usize)>,
    test_runs: Vec<(bool, usize)>,
    comments: Vec<LineComment>,
}

/// FNV-1a 64 over the file bytes: tiny, dependency-free, and collision
/// odds are irrelevant here (a collision costs a stale lex of one
/// file, caught the moment the file is next touched).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Loads the workspace under `root`, consulting and refreshing the
/// cache at `cache_path` when given. See [`crate::load_workspace`] for
/// the file-scope contract.
pub fn load_workspace_cached(
    root: &Path,
    cache_path: Option<&Path>,
) -> io::Result<(Workspace, CacheStats)> {
    let cached = cache_path.and_then(load_cache_file);
    let mut stats = CacheStats::default();
    let mut files: Vec<SourceFile> = Vec::new();
    let mut new_entries: Vec<(String, Entry)> = Vec::new();

    for (rel, abs) in collect_sources(root)? {
        let source = fs::read_to_string(&abs)?;
        let hash = fnv1a64(source.as_bytes());
        stats.files += 1;
        let lexed = match cached
            .as_ref()
            .and_then(|c| c.iter().find(|(r, e)| *r == rel && e.hash == hash))
        {
            Some((_, entry)) => {
                stats.hits += 1;
                reconstruct(&source, entry)
            }
            None => {
                stats.relexed += 1;
                crate::lex(&source)
            }
        };
        new_entries.push((rel.clone(), make_entry(&source, hash, &lexed)));
        let parsed = parse::parse(&lexed.code);
        files.push(SourceFile { rel, lexed, parsed });
    }

    if let Some(path) = cache_path {
        // Refresh even on full hits: entries for deleted files drop out.
        let _ = fs::write(path, render_cache(&new_entries));
    }
    files.sort_by(|a, b| a.rel.cmp(&b.rel));
    Ok((Workspace { files }, stats))
}

/// Diffs source against the code view into an [`Entry`].
fn make_entry(source: &str, hash: u64, lexed: &Lexed) -> Entry {
    let s = source.as_bytes();
    let c = lexed.code.as_bytes();
    let mut blanks = Vec::new();
    let mut i = 0usize;
    let n = s.len().min(c.len());
    while i < n {
        if s[i] == c[i] {
            i += 1;
            continue;
        }
        let start = i;
        while i < n && s[i] != c[i] {
            i += 1;
        }
        blanks.push((start, i));
    }
    let mut test_runs: Vec<(bool, usize)> = Vec::new();
    for &t in &lexed.test_lines {
        match test_runs.last_mut() {
            Some((v, count)) if *v == t => *count += 1,
            _ => test_runs.push((t, 1)),
        }
    }
    Entry {
        hash,
        blanks,
        test_runs,
        comments: lexed.comments.clone(),
    }
}

/// Rebuilds the [`Lexed`] views from the source text and a cache entry.
fn reconstruct(source: &str, entry: &Entry) -> Lexed {
    let mut code = source.as_bytes().to_vec();
    for &(start, end) in &entry.blanks {
        for b in code.iter_mut().take(end.min(source.len())).skip(start) {
            if *b != b'\n' {
                *b = b' ';
            }
        }
    }
    let mut test_lines = Vec::new();
    for &(v, count) in &entry.test_runs {
        test_lines.extend(std::iter::repeat_n(v, count));
    }
    Lexed {
        code: String::from_utf8(code).unwrap_or_else(|_| source.to_string()),
        test_lines,
        comments: entry.comments.clone(),
    }
}

/// Serializes entries to the versioned text format.
fn render_cache(entries: &[(String, Entry)]) -> String {
    let mut s = String::new();
    s.push_str(HEADER);
    s.push('\n');
    for (rel, e) in entries {
        s.push_str(&format!("file {rel}\n"));
        s.push_str(&format!("hash {:016x}\n", e.hash));
        let spans: Vec<String> = e.blanks.iter().map(|(a, b)| format!("{a}-{b}")).collect();
        s.push_str(&format!("blanks {}\n", spans.join(",")));
        let runs: Vec<String> = e
            .test_runs
            .iter()
            .map(|(v, n)| format!("{}{n}", if *v { 't' } else { 'f' }))
            .collect();
        s.push_str(&format!("tests {}\n", runs.join(",")));
        s.push_str(&format!("comments {}\n", e.comments.len()));
        for c in &e.comments {
            s.push_str(&format!(
                "c {} {} {}\n",
                c.line,
                u8::from(c.standalone),
                c.text
            ));
        }
        s.push_str("end\n");
    }
    s
}

/// Parses a cache file; `None` on any malformation (the run goes cold).
fn load_cache_file(path: &Path) -> Option<Vec<(String, Entry)>> {
    let text = fs::read_to_string(path).ok()?;
    parse_cache(&text)
}

fn parse_cache(text: &str) -> Option<Vec<(String, Entry)>> {
    let mut lines = text.lines();
    if lines.next()? != HEADER {
        return None;
    }
    let mut entries = Vec::new();
    loop {
        let Some(file_line) = lines.next() else {
            return Some(entries);
        };
        let rel = file_line.strip_prefix("file ")?.to_string();
        let hash = u64::from_str_radix(lines.next()?.strip_prefix("hash ")?, 16).ok()?;
        let blanks_spec = lines.next()?.strip_prefix("blanks ")?;
        let mut blanks = Vec::new();
        for span in blanks_spec.split(',').filter(|s| !s.is_empty()) {
            let (a, b) = span.split_once('-')?;
            let (a, b) = (a.parse().ok()?, b.parse().ok()?);
            if a >= b {
                return None;
            }
            blanks.push((a, b));
        }
        let tests_spec = lines.next()?.strip_prefix("tests ")?;
        let mut test_runs = Vec::new();
        for run in tests_spec.split(',').filter(|s| !s.is_empty()) {
            let v = match run.as_bytes().first()? {
                b't' => true,
                b'f' => false,
                _ => return None,
            };
            test_runs.push((v, run[1..].parse().ok()?));
        }
        let n_comments: usize = lines.next()?.strip_prefix("comments ")?.parse().ok()?;
        let mut comments = Vec::new();
        for _ in 0..n_comments {
            let c = lines.next()?.strip_prefix("c ")?;
            let (line, rest) = c.split_once(' ')?;
            let (standalone, text) = rest.split_once(' ').unwrap_or((rest, ""));
            comments.push(LineComment {
                line: line.parse().ok()?,
                standalone: match standalone {
                    "1" => true,
                    "0" => false,
                    _ => return None,
                },
                text: text.to_string(),
            });
        }
        if lines.next()? != "end" {
            return None;
        }
        entries.push((
            rel,
            entries_key_ok(Entry {
                hash,
                blanks,
                test_runs,
                comments,
            })?,
        ));
    }
}

/// Sanity bound: a hostile or corrupt entry must not allocate wildly.
fn entries_key_ok(e: Entry) -> Option<Entry> {
    let total_lines: usize = e.test_runs.iter().map(|(_, n)| n).sum();
    if total_lines > 10_000_000 || e.blanks.len() > 1_000_000 {
        return None;
    }
    Some(e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    /// A unique scratch workspace under the target-adjacent temp dir.
    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "mobisense-analyze-cache-{}-{name}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(dir.join("crates/demo/src")).unwrap();
        dir
    }

    const SRC: &str = "\
//! Demo crate.
pub fn live() -> &'static str {
    // lint: determinism -- demo waiver
    \"string body\"
}

#[cfg(test)]
mod tests {
    #[test]
    fn t() {}
}
";

    #[test]
    fn warm_run_relexes_zero_and_reconstructs_identically() {
        let root = scratch("warm");
        fs::write(root.join("crates/demo/src/lib.rs"), SRC).unwrap();
        let cache = root.join("cache.txt");

        let (cold_ws, cold) = load_workspace_cached(&root, Some(&cache)).unwrap();
        assert_eq!((cold.files, cold.relexed, cold.hits), (1, 1, 0));

        let (warm_ws, warm) = load_workspace_cached(&root, Some(&cache)).unwrap();
        assert_eq!((warm.files, warm.relexed, warm.hits), (1, 0, 1));

        let (a, b) = (&cold_ws.files[0], &warm_ws.files[0]);
        assert_eq!(a.lexed.code, b.lexed.code);
        assert_eq!(a.lexed.test_lines, b.lexed.test_lines);
        assert_eq!(a.lexed.comments, b.lexed.comments);
        assert_eq!(a.parsed.fns.len(), b.parsed.fns.len());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn changed_file_is_relexed_and_cache_refreshed() {
        let root = scratch("changed");
        let file = root.join("crates/demo/src/lib.rs");
        fs::write(&file, SRC).unwrap();
        let cache = root.join("cache.txt");
        load_workspace_cached(&root, Some(&cache)).unwrap();

        fs::write(&file, SRC.replace("live", "renamed")).unwrap();
        let (_, s) = load_workspace_cached(&root, Some(&cache)).unwrap();
        assert_eq!((s.relexed, s.hits), (1, 0));
        // And the refreshed cache now matches the new content.
        let (_, s2) = load_workspace_cached(&root, Some(&cache)).unwrap();
        assert_eq!((s2.relexed, s2.hits), (0, 1));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn corrupt_cache_degrades_to_cold_never_fails() {
        let root = scratch("corrupt");
        fs::write(root.join("crates/demo/src/lib.rs"), SRC).unwrap();
        let cache = root.join("cache.txt");
        for garbage in [
            "",
            "wrong header\n",
            "mobisense-analyze-cache v1\nfile x\nhash zz\n",
            "mobisense-analyze-cache v1\nfile x\nhash 00\nblanks 9-3\ntests \ncomments 0\nend\n",
        ] {
            fs::write(&cache, garbage).unwrap();
            let (_, s) = load_workspace_cached(&root, Some(&cache)).unwrap();
            assert_eq!((s.relexed, s.hits), (1, 0), "garbage: {garbage:?}");
        }
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn round_trip_format_is_stable() {
        let lexed = crate::lex(SRC);
        let entry = make_entry(SRC, fnv1a64(SRC.as_bytes()), &lexed);
        let text = render_cache(&[("crates/demo/src/lib.rs".to_string(), entry.clone())]);
        let parsed = parse_cache(&text).expect("round trip parses");
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].1, entry);
        let rebuilt = reconstruct(SRC, &parsed[0].1);
        assert_eq!(rebuilt.code, lexed.code);
        assert_eq!(rebuilt.test_lines, lexed.test_lines);
        assert_eq!(rebuilt.comments, lexed.comments);
    }

    #[test]
    fn fnv_matches_known_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }
}
