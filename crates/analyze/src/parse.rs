//! An item/brace-tree parser on top of the lexer: just enough
//! structure to build a call graph without `syn` or the compiler.
//!
//! Works on the lexer's *code view* (comments and literals blanked),
//! where brace matching is reliable. The parser walks the file once,
//! tracking `fn` items (free functions, inherent/trait methods with
//! bodies) and the `impl`/`trait` block that owns them, and records
//! each function's name, owner, 1-based line span and the byte span of
//! its body (braces included) inside the code view.
//!
//! The parser is total: it never panics on arbitrary token streams.
//! Unbalanced braces, truncated signatures and garbage bytes degrade
//! to shorter or absent items, never to a crash — pinned by a proptest
//! over arbitrary inputs. Known approximations (shared with the call
//! graph, see DESIGN.md §5.15): closures are not items (their bodies
//! attribute to the enclosing `fn`), and macro-generated functions are
//! invisible.

/// One `fn` item found in a source file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// The `impl`/`trait` type the function is defined on, when any.
    pub owner: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// 1-based line of the body's closing brace (== `line` for
    /// body-less trait declarations).
    pub end_line: usize,
    /// Byte span of the signature in the code view: from just after
    /// the `fn` keyword to just before the body `{` (or the `;`).
    pub sig: (usize, usize),
    /// Byte span of the body in the code view, braces included.
    /// `None` for body-less declarations (`fn f();` in traits). In a
    /// file truncated mid-body the span runs to end of input.
    pub body: Option<(usize, usize)>,
}

/// Every `fn` item of one source file, in source order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ParsedFile {
    /// The items, ordered by position of the `fn` keyword.
    pub fns: Vec<FnItem>,
}

/// Parses the code view of one file. Total: any byte sequence yields
/// a (possibly empty) item list, never a panic.
pub fn parse(code: &str) -> ParsedFile {
    let mut out = ParsedFile::default();
    let lines = LineIndex::new(code);
    parse_region(code.as_bytes(), 0, code.len(), None, &lines, &mut out, 0);
    out.fns.sort_by_key(|f| (f.line, f.name.clone()));
    out
}

/// Newline offsets for O(log n) offset→line translation.
struct LineIndex {
    newlines: Vec<usize>,
}

impl LineIndex {
    fn new(code: &str) -> Self {
        LineIndex {
            newlines: code
                .bytes()
                .enumerate()
                .filter(|(_, b)| *b == b'\n')
                .map(|(i, _)| i)
                .collect(),
        }
    }

    /// 1-based line containing byte `offset`.
    fn line_of(&self, offset: usize) -> usize {
        self.newlines.partition_point(|&n| n < offset) + 1
    }
}

/// Recursion guard: pathological nesting degrades to flat scanning
/// instead of a stack overflow.
const MAX_DEPTH: usize = 64;

fn parse_region(
    bytes: &[u8],
    start: usize,
    end: usize,
    owner: Option<&str>,
    lines: &LineIndex,
    out: &mut ParsedFile,
    depth: usize,
) {
    let end = end.min(bytes.len());
    let mut i = start;
    while i < end {
        let Some(&b) = bytes.get(i) else { break };
        if !(b.is_ascii_alphabetic() || b == b'_') {
            i += 1;
            continue;
        }
        let word_start = i;
        while i < end && bytes.get(i).is_some_and(|&c| is_ident_byte(c)) {
            i += 1;
        }
        let bounded =
            word_start == 0 || !bytes.get(word_start - 1).is_some_and(|&c| is_ident_byte(c));
        if !bounded {
            continue;
        }
        let word = &bytes[word_start..i];
        match word {
            b"fn" => {
                let Some(item_end) = parse_fn(bytes, i, end, owner, lines, out, depth) else {
                    continue;
                };
                i = item_end;
            }
            b"impl" | b"trait" => {
                // Owner name: the tokens between the keyword and the
                // block's `{` (skipping a trait-impl's `for`).
                let Some(open) = find_body_open(bytes, i, end) else {
                    continue;
                };
                let header = String::from_utf8_lossy(&bytes[i..open]).into_owned();
                let name = owner_name(&header);
                let close = match_brace(bytes, open, end);
                if depth < MAX_DEPTH {
                    parse_region(
                        bytes,
                        open + 1,
                        close,
                        name.as_deref(),
                        lines,
                        out,
                        depth + 1,
                    );
                }
                i = close.max(open + 1);
            }
            b"mod" => {
                // A module body: recurse with no owner.
                let Some(open) = find_body_open(bytes, i, end) else {
                    continue;
                };
                let close = match_brace(bytes, open, end);
                if depth < MAX_DEPTH {
                    parse_region(bytes, open + 1, close, None, lines, out, depth + 1);
                }
                i = close.max(open + 1);
            }
            _ => {}
        }
    }
}

/// Parses one `fn` item whose `fn` keyword ends at `after_kw`. Returns
/// the offset just past the item (body close or `;`), or `None` when
/// no function name follows (e.g. `fn` as the last token, or an `Fn`
/// trait bound mis-hit — `fn(` pointer types have no name and bail).
fn parse_fn(
    bytes: &[u8],
    after_kw: usize,
    end: usize,
    owner: Option<&str>,
    lines: &LineIndex,
    out: &mut ParsedFile,
    depth: usize,
) -> Option<usize> {
    let mut j = after_kw;
    while j < end && bytes.get(j).is_some_and(|b| b.is_ascii_whitespace()) {
        j += 1;
    }
    let name_start = j;
    while j < end && bytes.get(j).is_some_and(|&c| is_ident_byte(c)) {
        j += 1;
    }
    if j == name_start {
        return None; // `fn(` pointer type or truncated input
    }
    let name = String::from_utf8_lossy(&bytes[name_start..j]).into_owned();
    let fn_line = lines.line_of(after_kw.saturating_sub(2));

    // Scan the signature for the body `{` (at paren/bracket depth 0)
    // or a `;` ending a body-less declaration.
    let mut paren = 0usize;
    let mut bracket = 0usize;
    while j < end {
        match bytes.get(j) {
            Some(b'(') => paren += 1,
            Some(b')') => paren = paren.saturating_sub(1),
            Some(b'[') => bracket += 1,
            Some(b']') => bracket = bracket.saturating_sub(1),
            Some(b'{') if paren == 0 && bracket == 0 => {
                let close = match_brace(bytes, j, end);
                out.fns.push(FnItem {
                    name,
                    owner: owner.map(str::to_string),
                    line: fn_line,
                    end_line: lines.line_of(close.saturating_sub(1)),
                    sig: (after_kw, j),
                    body: Some((j, close)),
                });
                // Nested `fn` items inside the body are their own
                // top-level-style items (no owner).
                if depth < MAX_DEPTH {
                    parse_region(
                        bytes,
                        j + 1,
                        close.saturating_sub(1),
                        None,
                        lines,
                        out,
                        depth + 1,
                    );
                }
                return Some(close);
            }
            Some(b';') if paren == 0 && bracket == 0 => {
                out.fns.push(FnItem {
                    name,
                    owner: owner.map(str::to_string),
                    line: fn_line,
                    end_line: fn_line,
                    sig: (after_kw, j),
                    body: None,
                });
                return Some(j + 1);
            }
            None => break,
            _ => {}
        }
        j += 1;
    }
    // Truncated signature: record a body-less item and stop there.
    out.fns.push(FnItem {
        name,
        owner: owner.map(str::to_string),
        line: fn_line,
        end_line: fn_line,
        sig: (after_kw, end),
        body: None,
    });
    Some(end)
}

/// Offset of the `{` opening the block that follows a `impl`/`trait`/
/// `mod` header starting at `from`, or `None` when a `;` (or nothing)
/// comes first at bracket depth 0 (e.g. `mod name;`).
fn find_body_open(bytes: &[u8], from: usize, end: usize) -> Option<usize> {
    let mut paren = 0usize;
    let mut j = from;
    while j < end {
        match bytes.get(j)? {
            b'(' | b'[' | b'<' => paren += 1,
            b')' | b']' | b'>' => paren = paren.saturating_sub(1),
            b'{' => return Some(j),
            b';' if paren == 0 => return None,
            _ => {}
        }
        j += 1;
    }
    None
}

/// Offset just past the `}` matching the `{` at `open` (or `end` when
/// the file ends unbalanced).
fn match_brace(bytes: &[u8], open: usize, end: usize) -> usize {
    let mut depth = 0usize;
    let mut j = open;
    while j < end {
        match bytes.get(j) {
            Some(b'{') => depth += 1,
            Some(b'}') => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return j + 1;
                }
            }
            None => break,
            _ => {}
        }
        j += 1;
    }
    end
}

/// The owning type name from an `impl`/`trait` header (keyword
/// excluded): for `impl<T> Trait for Type<T>` the segment after `for`;
/// otherwise the last path segment before any generics.
fn owner_name(header: &str) -> Option<String> {
    // Strip a leading generic parameter list.
    let header = header.trim();
    let rest = if let Some(stripped) = header.strip_prefix('<') {
        let mut depth = 1usize;
        let mut cut = stripped.len();
        for (i, c) in stripped.char_indices() {
            match c {
                '<' => depth += 1,
                '>' => {
                    depth -= 1;
                    if depth == 0 {
                        cut = i + 1;
                        break;
                    }
                }
                _ => {}
            }
        }
        stripped.get(cut..).unwrap_or("")
    } else {
        header
    };
    let target = match rest.find(" for ") {
        Some(p) => rest.get(p + 5..).unwrap_or(""),
        None => rest,
    };
    let target = target.trim().trim_start_matches('&');
    let head: String = target
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_' || *c == ':')
        .collect();
    let last = head.rsplit("::").next().unwrap_or("").trim().to_string();
    if last.is_empty() {
        None
    } else {
        Some(last)
    }
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> ParsedFile {
        parse(&lex(src).code)
    }

    #[test]
    fn free_functions_methods_and_owners() {
        let src = "\
fn free(a: u32) -> u32 {
    a + 1
}

struct Q;

impl Q {
    pub fn method(&self) -> u32 {
        free(2)
    }
}

impl std::fmt::Display for Q {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, \"q\")
    }
}

trait Backend {
    fn record(&mut self) -> bool;
    fn idle(&mut self) -> bool {
        true
    }
}
";
        let p = parse_src(src);
        let names: Vec<(&str, Option<&str>)> = p
            .fns
            .iter()
            .map(|f| (f.name.as_str(), f.owner.as_deref()))
            .collect();
        assert_eq!(
            names,
            vec![
                ("free", None),
                ("method", Some("Q")),
                ("fmt", Some("Q")),
                ("record", Some("Backend")),
                ("idle", Some("Backend")),
            ]
        );
        let free = &p.fns[0];
        assert_eq!((free.line, free.end_line), (1, 3));
        assert!(free.body.is_some());
        let record = &p.fns[3];
        assert!(record.body.is_none(), "trait decl has no body");
    }

    #[test]
    fn bodies_span_their_braces() {
        let src = "fn f() { if true { g(); } }\nfn g() {}\n";
        let p = parse_src(src);
        assert_eq!(p.fns.len(), 2);
        let (s, e) = p.fns[0].body.expect("f has a body");
        assert_eq!(&src[s..e], "{ if true { g(); } }");
        let (s, e) = p.fns[1].body.expect("g has a body");
        assert_eq!(&src[s..e], "{}");
    }

    #[test]
    fn fn_pointer_types_and_closures_are_not_items() {
        let src = "\
fn f(cb: fn(u32) -> u32) -> u32 {
    let add = |x: u32| x + 1;
    add(cb(1))
}
";
        let p = parse_src(src);
        assert_eq!(p.fns.len(), 1, "{:?}", p.fns);
        assert_eq!(p.fns[0].name, "f");
    }

    #[test]
    fn where_clauses_and_generic_signatures() {
        let src = "\
fn g<T: Iterator<Item = [u8; 4]>>(t: T) -> usize
where
    T: Clone,
{
    t.count()
}
";
        let p = parse_src(src);
        assert_eq!(p.fns.len(), 1);
        let (s, e) = p.fns[0].body.expect("body");
        assert_eq!(&src[s..e], "{\n    t.count()\n}");
    }

    #[test]
    fn unbalanced_and_garbage_input_never_panics() {
        for src in [
            "fn",
            "fn (",
            "fn f(",
            "fn f() {",
            "}}}}{{{{",
            "impl {",
            "impl for {}",
            "trait ;",
            "mod m",
            "fn f() { fn g() {} }",
            "\u{1F980} fn crab() {}",
        ] {
            let p = parse_src(src);
            for item in &p.fns {
                if let Some((s, e)) = item.body {
                    assert!(s <= e);
                    let lexed = lex(src);
                    assert!(lexed.code.get(s..e).is_some(), "span valid for {src:?}");
                }
            }
        }
    }

    #[test]
    fn nested_fns_are_items_without_owner() {
        let src = "impl W { fn outer(&self) { fn inner() {} inner(); } }";
        let p = parse_src(src);
        let names: Vec<(&str, Option<&str>)> = p
            .fns
            .iter()
            .map(|f| (f.name.as_str(), f.owner.as_deref()))
            .collect();
        assert!(names.contains(&("outer", Some("W"))), "{names:?}");
        assert!(names.contains(&("inner", None)), "{names:?}");
    }
}
