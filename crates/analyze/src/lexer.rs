//! A small hand-rolled Rust lexer: just enough syntax awareness to
//! lint mechanically without `syn` or the compiler.
//!
//! The lexer produces three views of a source file:
//!
//! * a **code view** — the original text with every comment, string
//!   literal and char literal blanked to spaces (newlines preserved),
//!   so token scans never match inside prose or data;
//! * a **test map** — per-line flags marking every line that belongs
//!   to a `#[cfg(test)]` / `#[test]` item (attribute through closing
//!   brace), so lints can exempt test code;
//! * the **line comments**, with their text, from which lints read
//!   `// lint: <tag>` waivers and `// lock-order: A < B` declarations.
//!
//! Handled syntax: line comments (`//`, `///`, `//!`), nested block
//! comments, plain/byte strings with escapes, raw (byte) strings with
//! any number of `#`s, char and byte-char literals, and the char
//! literal vs. lifetime ambiguity (`'a'` vs `'a`). That is everything
//! token scanning needs; full expression parsing is deliberately out
//! of scope.

/// One `//` comment, with the text after the slashes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LineComment {
    /// 1-based line the comment starts on.
    pub line: usize,
    /// Comment text after `//` (and after any further `/` or `!`),
    /// trimmed.
    pub text: String,
    /// Whether the comment is alone on its line (only whitespace
    /// before the slashes). Standalone waivers cover the line below;
    /// trailing waivers cover only their own line.
    pub standalone: bool,
}

/// A lexed source file: code view plus side tables.
#[derive(Clone, Debug)]
pub struct Lexed {
    /// The code view: byte-for-byte the input, with comments and
    /// string/char literal contents replaced by spaces.
    pub code: String,
    /// `test_lines[i]` is true when 1-based line `i + 1` lies inside a
    /// `#[cfg(test)]` or `#[test]` item.
    pub test_lines: Vec<bool>,
    /// Every `//` comment in the file, in order.
    pub comments: Vec<LineComment>,
}

impl Lexed {
    /// 1-based line number of byte `offset` in the code view.
    pub fn line_of(&self, offset: usize) -> usize {
        self.code
            .as_bytes()
            .iter()
            .take(offset)
            .filter(|&&b| b == b'\n')
            .count()
            + 1
    }

    /// Whether 1-based line `line` is test code.
    pub fn is_test_line(&self, line: usize) -> bool {
        self.test_lines
            .get(line.saturating_sub(1))
            .copied()
            .unwrap_or(false)
    }

    /// Tags of `// lint: ...` waiver comments that cover `line`: a
    /// trailing waiver covers its own line; a standalone waiver (a
    /// comment alone on its line) covers the line immediately below.
    pub fn waiver_tags(&self, line: usize) -> Vec<String> {
        let mut tags = Vec::new();
        for c in &self.comments {
            let covers = if c.standalone {
                c.line + 1 == line
            } else {
                c.line == line
            };
            if !covers {
                continue;
            }
            if let Some(rest) = c.text.strip_prefix("lint:") {
                let spec = rest.split("--").next().unwrap_or("");
                for tag in spec.split(',') {
                    let tag = tag.trim();
                    if !tag.is_empty() {
                        tags.push(tag.to_string());
                    }
                }
            }
        }
        tags
    }

    /// Whether `line` carries a waiver with any of `accepted` tags.
    pub fn waived(&self, line: usize, accepted: &[&str]) -> bool {
        self.waiver_match(line, accepted).is_some()
    }

    /// The waiver covering `line` with one of `accepted` tags, if any:
    /// returns the 1-based line of the waiver comment itself and the
    /// matched tag — what a lint records as a [`crate::Suppression`]
    /// so the waiver-hygiene pass can tell used waivers from stale
    /// ones.
    pub fn waiver_match(&self, line: usize, accepted: &[&str]) -> Option<(usize, String)> {
        for c in &self.comments {
            let covers = if c.standalone {
                c.line + 1 == line
            } else {
                c.line == line
            };
            if !covers {
                continue;
            }
            let Some(rest) = c.text.strip_prefix("lint:") else {
                continue;
            };
            let spec = rest.split("--").next().unwrap_or("");
            for tag in spec.split(',').map(str::trim) {
                if accepted.contains(&tag) {
                    return Some((c.line, tag.to_string()));
                }
            }
        }
        None
    }
}

/// Lexes one source file.
pub fn lex(source: &str) -> Lexed {
    let bytes = source.as_bytes();
    let mut code = bytes.to_vec();
    let mut comments = Vec::new();
    let mut line = 1usize;
    let mut i = 0usize;

    // Blank byte `j` in the code view unless it is a newline.
    let blank = |code: &mut [u8], j: usize| {
        if code[j] != b'\n' {
            code[j] = b' ';
        }
    };

    while i < bytes.len() {
        let b = bytes[i];
        if b == b'\n' {
            line += 1;
            i += 1;
            continue;
        }
        // Line comment.
        if b == b'/' && bytes.get(i + 1) == Some(&b'/') {
            let start = i;
            let standalone = bytes[..i]
                .iter()
                .rev()
                .take_while(|&&c| c != b'\n')
                .all(|c| c.is_ascii_whitespace());
            while i < bytes.len() && bytes[i] != b'\n' {
                blank(&mut code, i);
                i += 1;
            }
            let raw = &source[start + 2..i];
            let text = raw.trim_start_matches(['/', '!']).trim().to_string();
            comments.push(LineComment {
                line,
                text,
                standalone,
            });
            continue;
        }
        // Block comment, nested.
        if b == b'/' && bytes.get(i + 1) == Some(&b'*') {
            let mut depth = 0usize;
            while i < bytes.len() {
                if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    depth += 1;
                    blank(&mut code, i);
                    blank(&mut code, i + 1);
                    i += 2;
                } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                    depth -= 1;
                    blank(&mut code, i);
                    blank(&mut code, i + 1);
                    i += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    if bytes[i] == b'\n' {
                        line += 1;
                    }
                    blank(&mut code, i);
                    i += 1;
                }
            }
            continue;
        }
        // Raw (byte) string: r"...", r#"..."#, br"...", br#"..."#.
        if b == b'r' || b == b'b' {
            let prev_ident = i > 0 && is_ident_byte(bytes[i - 1]);
            if !prev_ident {
                if let Some(len) = raw_string_len(&bytes[i..]) {
                    for (j, &rb) in bytes.iter().enumerate().skip(i).take(len) {
                        if rb == b'\n' {
                            line += 1;
                        }
                        blank(&mut code, j);
                    }
                    i += len;
                    continue;
                }
            }
        }
        // Plain (byte) string.
        if b == b'"' {
            blank(&mut code, i);
            i += 1;
            while i < bytes.len() {
                match bytes[i] {
                    b'\\' => {
                        blank(&mut code, i);
                        if i + 1 < bytes.len() {
                            if bytes[i + 1] == b'\n' {
                                line += 1;
                            }
                            blank(&mut code, i + 1);
                        }
                        i += 2;
                    }
                    b'"' => {
                        blank(&mut code, i);
                        i += 1;
                        break;
                    }
                    c => {
                        if c == b'\n' {
                            line += 1;
                        }
                        blank(&mut code, i);
                        i += 1;
                    }
                }
            }
            continue;
        }
        // Char literal vs. lifetime.
        if b == b'\'' {
            let is_char = match bytes.get(i + 1) {
                Some(b'\\') => true,
                Some(&c) => {
                    // `'x'` is a char; `'x` (no closing quote within a
                    // couple of bytes) is a lifetime. Multi-byte chars
                    // ('\u{...}' aside) close within 5 bytes.
                    (1..=4).any(|k| {
                        bytes.get(i + 1 + k) == Some(&b'\'')
                            && (k == 1 || !c.is_ascii() || !is_ident_byte(c))
                    })
                }
                None => false,
            };
            if is_char {
                blank(&mut code, i);
                i += 1;
                if bytes.get(i) == Some(&b'\\') {
                    blank(&mut code, i);
                    i += 1;
                    // Escape body (possibly \u{..}): blank until the
                    // closing quote.
                    while i < bytes.len() && bytes[i] != b'\'' {
                        blank(&mut code, i);
                        i += 1;
                    }
                } else {
                    while i < bytes.len() && bytes[i] != b'\'' {
                        blank(&mut code, i);
                        i += 1;
                    }
                }
                if i < bytes.len() {
                    blank(&mut code, i);
                    i += 1;
                }
            } else {
                // Lifetime: skip the quote and the identifier.
                i += 1;
                while i < bytes.len() && is_ident_byte(bytes[i]) {
                    i += 1;
                }
            }
            continue;
        }
        i += 1;
    }

    let code = String::from_utf8(code).unwrap_or_default();
    let test_lines = mark_test_lines(&code);
    Lexed {
        code,
        test_lines,
        comments,
    }
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Length of a raw string literal starting at `b` (`r`/`br` prefix
/// included), or `None` when `b` does not start one.
fn raw_string_len(b: &[u8]) -> Option<usize> {
    let mut i = 0usize;
    if b.first() == Some(&b'b') {
        i += 1;
    }
    if b.get(i) != Some(&b'r') {
        return None;
    }
    i += 1;
    let mut hashes = 0usize;
    while b.get(i) == Some(&b'#') {
        hashes += 1;
        i += 1;
    }
    if b.get(i) != Some(&b'"') {
        return None;
    }
    i += 1;
    // Scan for `"` followed by `hashes` hashes.
    while i < b.len() {
        if b[i] == b'"'
            && b.get(i + 1..i + 1 + hashes)
                .is_some_and(|s| s.iter().all(|&h| h == b'#'))
        {
            return Some(i + 1 + hashes);
        }
        i += 1;
    }
    Some(b.len())
}

/// Marks every line belonging to a `#[cfg(test)]` / `#[test]` item.
/// Works on the code view, where brace matching is reliable.
fn mark_test_lines(code: &str) -> Vec<bool> {
    let n_lines = code.lines().count().max(code.ends_with('\n') as usize);
    let mut marks = vec![false; n_lines.max(1)];
    let bytes = code.as_bytes();
    let mut i = 0usize;
    while i < bytes.len() {
        if bytes[i] != b'#' {
            i += 1;
            continue;
        }
        let Some((attr, attr_end)) = parse_attribute(bytes, i) else {
            i += 1;
            continue;
        };
        if !attribute_is_test(&attr) {
            i = attr_end;
            continue;
        }
        // Found a test attribute: the item extends past any further
        // attributes to the matching `}` of its first brace, or to the
        // first top-level `;` for brace-less items.
        let start_line = line_of_offset(bytes, i);
        let mut j = attr_end;
        loop {
            while j < bytes.len() && bytes[j].is_ascii_whitespace() {
                j += 1;
            }
            if bytes.get(j) == Some(&b'#') {
                if let Some((_, e)) = parse_attribute(bytes, j) {
                    j = e;
                    continue;
                }
            }
            break;
        }
        let mut depth = 0usize;
        let mut end = bytes.len();
        while j < bytes.len() {
            match bytes[j] {
                b'{' => depth += 1,
                b'}' => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        end = j + 1;
                        break;
                    }
                }
                b';' if depth == 0 => {
                    end = j + 1;
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        let end_line = line_of_offset(bytes, end.saturating_sub(1));
        for l in start_line..=end_line {
            if let Some(m) = marks.get_mut(l - 1) {
                *m = true;
            }
        }
        i = end;
    }
    marks
}

/// Parses an attribute starting at `#`: returns its inner text and the
/// offset just past the closing `]`.
fn parse_attribute(bytes: &[u8], start: usize) -> Option<(String, usize)> {
    let mut i = start + 1;
    if bytes.get(i) == Some(&b'!') {
        i += 1;
    }
    while i < bytes.len() && bytes[i].is_ascii_whitespace() {
        i += 1;
    }
    if bytes.get(i) != Some(&b'[') {
        return None;
    }
    let open = i;
    let mut depth = 0usize;
    while i < bytes.len() {
        match bytes[i] {
            b'[' => depth += 1,
            b']' => {
                depth -= 1;
                if depth == 0 {
                    let inner = String::from_utf8_lossy(&bytes[open + 1..i]).into_owned();
                    return Some((inner, i + 1));
                }
            }
            _ => {}
        }
        i += 1;
    }
    None
}

/// Whether an attribute body marks test-only code: `test`, or a
/// `cfg(...)` whose predicate mentions the `test` flag.
fn attribute_is_test(attr: &str) -> bool {
    let flat: String = attr.chars().filter(|c| !c.is_whitespace()).collect();
    if flat == "test" {
        return true;
    }
    if !flat.starts_with("cfg(") {
        return false;
    }
    // Word-boundary search for `test` inside the predicate.
    let b = flat.as_bytes();
    flat.match_indices("test").any(|(p, _)| {
        let before_ok = p == 0 || !is_ident_byte(b[p - 1]);
        let after = p + 4;
        let after_ok = after >= b.len() || !is_ident_byte(b[after]);
        before_ok && after_ok
    })
}

fn line_of_offset(bytes: &[u8], offset: usize) -> usize {
    bytes.iter().take(offset).filter(|&&b| b == b'\n').count() + 1
}

/// Finds word-boundary occurrences of `needle` in the code view,
/// returning 1-based lines. A match is word-bounded when the bytes
/// around it are not identifier bytes — so `HashMap` does not match
/// `MyHashMapLike`, while punctuation-delimited needles like
/// `.unwrap()` match exactly.
pub fn find_token_lines(lexed: &Lexed, needle: &str) -> Vec<usize> {
    let code = lexed.code.as_bytes();
    let first_is_ident = needle
        .as_bytes()
        .first()
        .copied()
        .is_some_and(is_ident_byte);
    let last_is_ident = needle.as_bytes().last().copied().is_some_and(is_ident_byte);
    let mut lines = Vec::new();
    for (pos, _) in lexed.code.match_indices(needle) {
        if first_is_ident && pos > 0 && is_ident_byte(code[pos - 1]) {
            continue;
        }
        let end = pos + needle.len();
        if last_is_ident && end < code.len() && is_ident_byte(code[end]) {
            continue;
        }
        lines.push(lexed.line_of(pos));
    }
    lines
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_blanked() {
        let src = "let x = \"HashMap\"; // HashMap here\nlet y = 1; /* HashMap */ let z = 'H';\n";
        let l = lex(src);
        assert!(!l.code.contains("HashMap"), "code view: {}", l.code);
        assert_eq!(l.comments.len(), 1);
        assert_eq!(l.comments[0].text, "HashMap here");
        // Structure (offsets/newlines) is preserved.
        assert_eq!(l.code.len(), src.len());
        assert_eq!(l.code.lines().count(), 2);
    }

    #[test]
    fn raw_strings_and_escapes_are_blanked() {
        let src = r####"let a = r#"unwrap() "quoted" inside"#; let b = "esc \" .unwrap()"; let c = b"x.unwrap()";"####;
        let l = lex(src);
        assert!(!l.code.contains("unwrap"), "code view: {}", l.code);
    }

    #[test]
    fn lifetimes_survive_char_literals_do_not() {
        let src = "fn f<'a>(x: &'a str) -> char { let c = 'x'; let d = '\\n'; let e = '{'; c }";
        let l = lex(src);
        assert!(l.code.contains("<'a>"), "lifetime kept: {}", l.code);
        assert!(l.code.contains("&'a str"));
        assert!(!l.code.contains("'x'"), "char blanked: {}", l.code);
        assert!(l.code.contains('{'), "braces outside chars kept");
        // The '{' char literal must not unbalance brace matching.
        let opens = l.code.matches('{').count();
        let closes = l.code.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn cfg_test_items_are_marked_to_their_closing_brace() {
        let src = "\
fn live() {
    x.unwrap();
}

#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        y.unwrap();
    }
}

fn live_again() {}
";
        let l = lex(src);
        assert!(!l.is_test_line(2), "live code is not test");
        assert!(l.is_test_line(5), "attribute line is test");
        assert!(l.is_test_line(9), "body is test");
        assert!(l.is_test_line(11), "closing brace is test");
        assert!(!l.is_test_line(13), "code after the mod is live");
    }

    #[test]
    fn test_attribute_variants_are_recognized() {
        assert!(attribute_is_test("test"));
        assert!(attribute_is_test("cfg(test)"));
        assert!(attribute_is_test("cfg(all(test, unix))"));
        assert!(attribute_is_test("cfg(any(test, fuzzing))"));
        assert!(!attribute_is_test("cfg(feature = \"latest\")"));
        assert!(!attribute_is_test("cfg(unix)"));
        assert!(!attribute_is_test("derive(Debug)"));
    }

    #[test]
    fn waivers_cover_their_line_and_the_next() {
        let src = "\
// lint: poison-loud -- frame path fails fast
let a = m.lock().expect(\"poisoned\");
let b = m.lock().expect(\"poisoned\"); // lint: poison-loud, panic
let c = m.lock().expect(\"poisoned\");
";
        let l = lex(src);
        assert!(l.waived(2, &["poison-loud"]));
        assert!(l.waived(3, &["panic"]));
        assert!(l.waived(3, &["poison-loud"]));
        assert!(!l.waived(4, &["poison-loud"]), "line 4 has no waiver");
        assert!(!l.waived(2, &["checked-index"]), "wrong tag rejected");
    }

    #[test]
    fn token_search_is_word_bounded() {
        let src =
            "use std::collections::HashMap;\nstruct MyHashMapLike;\nlet m: HashMap<u32, u8>;\n";
        let l = lex(src);
        assert_eq!(find_token_lines(&l, "HashMap"), vec![1, 3]);
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let src = "/* outer /* inner */ still comment */ fn f() {}";
        let l = lex(src);
        assert!(l.code.contains("fn f()"));
        assert!(!l.code.contains("outer"));
        assert!(!l.code.contains("still"));
    }
}
