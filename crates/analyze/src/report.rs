//! Machine-readable findings report: one JSON document for CI
//! artifacts and downstream tooling.
//!
//! The CLI writes this with `--report <path>` on every run, pass or
//! fail, so a green build still archives what the analyzer looked at
//! (file counts, cache behavior, suppressions in force). The format is
//! hand-rolled — the analyzer is std-only by design — and versioned:
//!
//! ```json
//! {
//!   "version": 1,
//!   "files": 63,
//!   "relexed": 0,
//!   "cache_hits": 63,
//!   "findings": [
//!     {"file": "...", "line": 7, "lint": "hot-path",
//!      "severity": "error", "message": "..."}
//!   ],
//!   "suppressions": [
//!     {"file": "...", "waiver_line": 6, "finding_line": 7,
//!      "lint": "hot-path", "tag": "hot-path"}
//!   ]
//! }
//! ```
//!
//! Severity is derived from the lint: advisory lints whose findings
//! are requests for a written reason (`error-swallow`,
//! `waiver-hygiene`) are `"warning"`; invariant violations are
//! `"error"`. The CLI exit code ignores the distinction — `--deny-all`
//! means deny all — but dashboards get to rank.

use crate::cache::CacheStats;
use crate::{Outcome, WAIVER_HYGIENE};

/// Severity of a lint's findings, for the report only.
pub fn severity(lint: &str) -> &'static str {
    match lint {
        "error-swallow" => "warning",
        l if l == WAIVER_HYGIENE => "warning",
        _ => "error",
    }
}

/// Renders the report document.
pub fn render(out: &Outcome, stats: &CacheStats) -> String {
    let mut s = String::with_capacity(1024);
    s.push_str("{\n");
    s.push_str("  \"version\": 1,\n");
    s.push_str(&format!("  \"files\": {},\n", stats.files));
    s.push_str(&format!("  \"relexed\": {},\n", stats.relexed));
    s.push_str(&format!("  \"cache_hits\": {},\n", stats.hits));
    s.push_str("  \"findings\": [");
    for (i, f) in out.findings.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str("\n    {");
        s.push_str(&format!("\"file\": {}, ", json_str(&f.file)));
        s.push_str(&format!("\"line\": {}, ", f.line));
        s.push_str(&format!("\"lint\": {}, ", json_str(f.lint)));
        s.push_str(&format!("\"severity\": {}, ", json_str(severity(f.lint))));
        s.push_str(&format!("\"message\": {}", json_str(&f.message)));
        s.push('}');
    }
    if !out.findings.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str("],\n");
    s.push_str("  \"suppressions\": [");
    for (i, sp) in out.suppressions.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str("\n    {");
        s.push_str(&format!("\"file\": {}, ", json_str(&sp.file)));
        s.push_str(&format!("\"waiver_line\": {}, ", sp.waiver_line));
        s.push_str(&format!("\"finding_line\": {}, ", sp.finding_line));
        s.push_str(&format!("\"lint\": {}, ", json_str(sp.lint)));
        s.push_str(&format!("\"tag\": {}", json_str(&sp.tag)));
        s.push('}');
    }
    if !out.suppressions.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str("]\n}\n");
    s
}

/// JSON string escaping: quotes, backslashes, and control characters.
fn json_str(raw: &str) -> String {
    let mut s = String::with_capacity(raw.len() + 2);
    s.push('"');
    for c in raw.chars() {
        match c {
            '"' => s.push_str("\\\""),
            '\\' => s.push_str("\\\\"),
            '\n' => s.push_str("\\n"),
            '\r' => s.push_str("\\r"),
            '\t' => s.push_str("\\t"),
            c if (c as u32) < 0x20 => s.push_str(&format!("\\u{:04x}", c as u32)),
            c => s.push(c),
        }
    }
    s.push('"');
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Finding, Suppression};

    fn sample() -> Outcome {
        let mut out = Outcome::default();
        out.findings.push(Finding {
            file: "crates/serve/src/queue.rs".into(),
            line: 7,
            lint: "hot-path",
            message: "a \"quoted\"\nmessage".into(),
        });
        out.findings.push(Finding {
            file: "crates/store/src/writer.rs".into(),
            line: 88,
            lint: "error-swallow",
            message: "m".into(),
        });
        out.suppressions.push(Suppression {
            file: "crates/serve/src/recording.rs".into(),
            waiver_line: 340,
            finding_line: 341,
            lint: "error-swallow",
            tag: "error-swallow".into(),
        });
        out
    }

    #[test]
    fn renders_counts_severities_and_escapes() {
        let stats = crate::cache::CacheStats {
            files: 63,
            relexed: 0,
            hits: 63,
        };
        let doc = render(&sample(), &stats);
        assert!(doc.contains("\"version\": 1"));
        assert!(doc.contains("\"relexed\": 0"));
        assert!(doc.contains("\"cache_hits\": 63"));
        assert!(doc.contains("\"severity\": \"error\""));
        assert!(doc.contains("\"severity\": \"warning\""));
        assert!(doc.contains("a \\\"quoted\\\"\\nmessage"));
        assert!(doc.contains("\"waiver_line\": 340"));
        // Balanced braces/brackets — a cheap well-formedness check.
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
        assert_eq!(doc.matches('[').count(), doc.matches(']').count());
    }

    #[test]
    fn empty_report_is_well_formed() {
        let doc = render(&Outcome::default(), &crate::cache::CacheStats::default());
        assert!(doc.contains("\"findings\": []"));
        assert!(doc.contains("\"suppressions\": []"));
    }

    #[test]
    fn severity_map_is_total() {
        assert_eq!(severity("determinism"), "error");
        assert_eq!(severity("hold-and-call"), "error");
        assert_eq!(severity("error-swallow"), "warning");
        assert_eq!(severity("waiver-hygiene"), "warning");
        assert_eq!(severity("anything-else"), "error");
    }
}
