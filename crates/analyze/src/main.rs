//! `mobisense-analyze` CLI.
//!
//! ```text
//! cargo run -p mobisense-analyze -- --deny-all          # CI gate
//! cargo run -p mobisense-analyze -- --list              # lint inventory
//! cargo run -p mobisense-analyze -- --only determinism  # one lint
//! cargo run -p mobisense-analyze -- --root /path/to/ws  # other root
//! ```
//!
//! Findings print one per line as `path:line: [lint] message`. Without
//! `--deny-all` the exit code is always 0 (report-only); with it, any
//! finding exits 1. I/O or usage errors exit 2.

#![forbid(unsafe_code)]

use std::env;
use std::path::PathBuf;
use std::process::ExitCode;

use mobisense_analyze::{all_lints, load_workspace, run};

struct Options {
    root: PathBuf,
    deny_all: bool,
    list: bool,
    only: Vec<String>,
}

fn usage() -> &'static str {
    "usage: mobisense-analyze [--root DIR] [--deny-all] [--list] [--only LINT]...\n\
     \n\
     --root DIR   workspace root to scan (default: current directory)\n\
     --deny-all   exit 1 when any lint finding is reported\n\
     --list       print every lint with its invariant and exit\n\
     --only LINT  run only the named lint (repeatable)"
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        root: PathBuf::from("."),
        deny_all: false,
        list: false,
        only: Vec::new(),
    };
    let mut args = env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                let dir = args.next().ok_or("--root needs a directory")?;
                opts.root = PathBuf::from(dir);
            }
            "--deny-all" => opts.deny_all = true,
            "--list" => opts.list = true,
            "--only" => {
                let name = args.next().ok_or("--only needs a lint name")?;
                opts.only.push(name);
            }
            "--help" | "-h" => {
                println!("{}", usage());
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n{}", usage());
            return ExitCode::from(2);
        }
    };

    let mut lints = all_lints();
    if opts.list {
        for lint in &lints {
            println!("{:<22} {}", lint.name(), lint.invariant());
        }
        return ExitCode::SUCCESS;
    }
    if !opts.only.is_empty() {
        let known: Vec<&str> = lints.iter().map(|l| l.name()).collect();
        for name in &opts.only {
            if !known.contains(&name.as_str()) {
                eprintln!("error: unknown lint `{name}` (known: {})", known.join(", "));
                return ExitCode::from(2);
            }
        }
        lints.retain(|l| opts.only.iter().any(|n| n == l.name()));
    }

    let ws = match load_workspace(&opts.root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!(
                "error: failed to load workspace at {}: {e}",
                opts.root.display()
            );
            return ExitCode::from(2);
        }
    };
    if ws.files.is_empty() {
        eprintln!(
            "error: no sources found under {} (expected crates/*/src)",
            opts.root.display()
        );
        return ExitCode::from(2);
    }

    let findings = run(&ws, &lints);
    for f in &findings {
        println!("{f}");
    }
    let n = findings.len();
    if n == 0 {
        eprintln!(
            "mobisense-analyze: {} file(s), {} lint(s), no findings",
            ws.files.len(),
            lints.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "mobisense-analyze: {} file(s), {} lint(s), {n} finding(s)",
            ws.files.len(),
            lints.len()
        );
        if opts.deny_all {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        }
    }
}
