//! `mobisense-analyze` CLI.
//!
//! ```text
//! cargo run -p mobisense-analyze -- --deny-all          # CI gate
//! cargo run -p mobisense-analyze -- --list              # lint inventory
//! cargo run -p mobisense-analyze -- --only determinism  # one lint
//! cargo run -p mobisense-analyze -- --root /path/to/ws  # other root
//! cargo run -p mobisense-analyze -- --cache .analyze-cache \
//!     --report findings.json --deny-all                 # CI, warm + artifact
//! ```
//!
//! Findings print one per line as `path:line: [lint] message`. Without
//! `--deny-all` the exit code is always 0 (report-only); with it, any
//! finding exits 1. I/O or usage errors exit 2.
//!
//! A full-suite run (no `--only`) also runs waiver hygiene: stale or
//! unknown-tag `// lint:` waivers are findings. A subset run skips it,
//! because a waiver owned by a lint that did not run would look stale.

#![forbid(unsafe_code)]

use std::env;
use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

use mobisense_analyze::{all_lints, cache, report, run_full};

struct Options {
    root: PathBuf,
    deny_all: bool,
    list: bool,
    only: Vec<String>,
    report: Option<PathBuf>,
    cache: Option<PathBuf>,
}

fn usage() -> &'static str {
    "usage: mobisense-analyze [--root DIR] [--deny-all] [--list] [--only LINT]...\n\
     \x20                        [--report FILE] [--cache FILE]\n\
     \n\
     --root DIR    workspace root to scan (default: current directory)\n\
     --deny-all    exit 1 when any lint finding is reported\n\
     --list        print every lint with its invariant and exit\n\
     --only LINT   run only the named lint (repeatable; disables waiver hygiene)\n\
     --report FILE write a JSON findings report (written pass or fail)\n\
     --cache FILE  incremental lex cache: unchanged files skip re-lexing"
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        root: PathBuf::from("."),
        deny_all: false,
        list: false,
        only: Vec::new(),
        report: None,
        cache: None,
    };
    let mut args = env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                let dir = args.next().ok_or("--root needs a directory")?;
                opts.root = PathBuf::from(dir);
            }
            "--deny-all" => opts.deny_all = true,
            "--list" => opts.list = true,
            "--only" => {
                let name = args.next().ok_or("--only needs a lint name")?;
                opts.only.push(name);
            }
            "--report" => {
                let path = args.next().ok_or("--report needs a file path")?;
                opts.report = Some(PathBuf::from(path));
            }
            "--cache" => {
                let path = args.next().ok_or("--cache needs a file path")?;
                opts.cache = Some(PathBuf::from(path));
            }
            "--help" | "-h" => {
                println!("{}", usage());
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n{}", usage());
            return ExitCode::from(2);
        }
    };

    let mut lints = all_lints();
    if opts.list {
        for lint in &lints {
            println!("{:<22} {}", lint.name(), lint.invariant());
        }
        return ExitCode::SUCCESS;
    }
    if !opts.only.is_empty() {
        let known: Vec<&str> = lints.iter().map(|l| l.name()).collect();
        for name in &opts.only {
            if !known.contains(&name.as_str()) {
                eprintln!("error: unknown lint `{name}` (known: {})", known.join(", "));
                return ExitCode::from(2);
            }
        }
        lints.retain(|l| opts.only.iter().any(|n| n == l.name()));
    }

    let (ws, stats) = match cache::load_workspace_cached(&opts.root, opts.cache.as_deref()) {
        Ok(pair) => pair,
        Err(e) => {
            eprintln!(
                "error: failed to load workspace at {}: {e}",
                opts.root.display()
            );
            return ExitCode::from(2);
        }
    };
    if ws.files.is_empty() {
        eprintln!(
            "error: no sources found under {} (expected crates/*/src)",
            opts.root.display()
        );
        return ExitCode::from(2);
    }

    // Waiver hygiene needs the full suite: a subset run cannot tell a
    // stale waiver from one owned by a lint that did not run.
    let out = run_full(&ws, &lints, opts.only.is_empty());
    for f in &out.findings {
        println!("{f}");
    }
    if let Some(path) = &opts.report {
        let doc = report::render(&out, &stats);
        if let Err(e) = fs::write(path, doc) {
            eprintln!("error: failed to write report {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    let n = out.findings.len();
    eprintln!(
        "mobisense-analyze: {} file(s) ({} re-lexed, {} cached), {} lint(s), \
         {n} finding(s), {} suppression(s)",
        stats.files,
        stats.relexed,
        stats.hits,
        lints.len(),
        out.suppressions.len()
    );
    if n > 0 && opts.deny_all {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
