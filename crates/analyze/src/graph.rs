//! Approximate per-crate call graph and symbol index.
//!
//! Built on [`crate::parse`]: every function body is scanned once for
//! *operations* — calls, `.lock()`-style acquisitions, `drop(guard)`
//! releases, condvar waits and blocking primitives — in source order.
//! Call sites are resolved **by name within the same crate** (trait
//! dispatch and cross-crate calls stay unresolved), giving the graph
//! lints a conservative-but-honest view: everything they report is
//! anchored to a real token, and the approximations only ever lose
//! edges, never invent spans.
//!
//! Known false negatives, documented in DESIGN.md §5.15: calls through
//! trait objects and into other crates, `RwLock` acquisitions,
//! macro-generated bodies, and guards released by scope end rather
//! than `drop()`. Known over-approximations: a method call resolves to
//! *every* same-crate function with that name, so a `Vec::push` site
//! may pick up a queue's `push` — the graph lints compensate by
//! reporting at real primitive sites (where a waiver states intent).

use std::collections::BTreeMap;

use crate::Workspace;

/// How a blocking primitive blocks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BlockKind {
    /// Filesystem I/O (open/rename/remove/sync and friends).
    Io,
    /// An explicit sleep.
    Sleep,
    /// A wait with a deadline (`park_timeout`, `wait_timeout`,
    /// `recv_timeout`).
    BoundedWait,
    /// A wait with no deadline (condvar `wait`, channel `recv`,
    /// thread `join`/`park`).
    UnboundedWait,
}

impl BlockKind {
    /// Short human label for messages.
    pub fn label(self) -> &'static str {
        match self {
            BlockKind::Io => "filesystem I/O",
            BlockKind::Sleep => "sleep",
            BlockKind::BoundedWait => "bounded wait",
            BlockKind::UnboundedWait => "unbounded wait",
        }
    }
}

/// One call-shaped site inside a function body, before resolution.
#[derive(Clone, Debug)]
pub struct CallOp {
    /// The called name (method name or last path segment).
    pub name: String,
    /// Whether the site is a method call (`recv.name(..)`).
    pub method: bool,
    /// Full path segments for plain calls (`thread::sleep` →
    /// `["thread", "sleep"]`); just the name for bare calls.
    pub path: Vec<String>,
    /// Receiver chain segments for method calls (`self.inner.lock()` →
    /// `["self", "inner"]`). Empty when the chain is not a simple
    /// ident path (e.g. a call-result receiver).
    pub receiver: Vec<String>,
    /// Whether the argument list is empty (`()`).
    pub empty_arity: bool,
    /// The first argument when it is a bare identifier.
    pub first_arg: Option<String>,
    /// `let [mut] NAME =` binding receiving the call's result, when
    /// the call is the top of its statement's initializer.
    pub binding: Option<String>,
    /// 1-based line of the call name.
    pub line: usize,
}

/// One operation inside a function body, in source order.
#[derive(Clone, Debug)]
pub enum Op {
    /// A call-shaped site (classified later against the graph).
    Call(CallOp),
    /// `drop(ident)` — releases the named guard.
    Drop {
        /// The dropped binding.
        ident: String,
        /// 1-based line.
        line: usize,
    },
}

/// One function node of a crate graph.
#[derive(Clone, Debug)]
pub struct FnNode {
    /// Index of the defining file in `Workspace::files`.
    pub file: usize,
    /// Workspace-relative path of the defining file.
    pub rel: String,
    /// File stem (`recording` for `.../recording.rs`).
    pub stem: String,
    /// Function name.
    pub name: String,
    /// Owning `impl`/`trait` type, when any.
    pub owner: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Operations of the body, in source order.
    pub ops: Vec<Op>,
    /// Whether the signature returns a lock guard (`MutexGuard` in the
    /// return type) — a call to such a function acquires its lock on
    /// behalf of the caller.
    pub returns_guard: bool,
}

impl FnNode {
    /// Display name: `Owner::name` or plain `name`.
    pub fn display(&self) -> String {
        match &self.owner {
            Some(o) => format!("{o}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// What one [`CallOp`] turned out to be once the crate's symbols are
/// known.
#[derive(Clone, Debug)]
pub enum Classified {
    /// A lock acquisition: lock id plus the guard binding (None when
    /// the guard is a statement temporary, released at `;`).
    Lock {
        /// Stable lock identity, e.g. `Channel.inner`.
        lock: String,
        /// Named guard binding, when any.
        guard: Option<String>,
    },
    /// A blocking primitive used directly.
    Block {
        /// How it blocks.
        kind: BlockKind,
        /// Human-readable primitive, e.g. `Condvar::wait`.
        what: String,
        /// The guard passed to a condvar wait (that guard is released
        /// for the duration of the wait).
        wait_guard: Option<String>,
    },
    /// Calls resolved to same-crate functions (indices into
    /// [`CrateGraph::fns`]).
    Calls(Vec<usize>),
    /// Unresolved and not a known primitive: assumed non-blocking
    /// (documented false negative for cross-crate calls).
    Opaque,
}

/// Names never resolved to same-crate functions: ubiquitous std trait
/// methods whose resolution would wire unrelated bodies together.
const RESOLVE_STOPLIST: &[&str] = &[
    "drop",
    "clone",
    "fmt",
    "from",
    "into",
    "default",
    "eq",
    "cmp",
    "hash",
    "to_string",
    "to_owned",
    "next",
];

/// Path heads that are always external (never same-crate modules).
const EXTERNAL_HEADS: &[&str] = &["std", "core", "alloc"];

/// The functions of one crate with name-indexed resolution.
#[derive(Clone, Debug, Default)]
pub struct CrateGraph {
    /// Crate name (`serve` for `crates/serve/...`).
    pub name: String,
    /// Every function of the crate, in file/position order.
    pub fns: Vec<FnNode>,
    by_name: BTreeMap<String, Vec<usize>>,
}

impl CrateGraph {
    /// Indices of same-crate functions a call to `name` may reach.
    /// Empty for stoplisted names and unknown names.
    pub fn resolve(&self, name: &str) -> &[usize] {
        if RESOLVE_STOPLIST.contains(&name) {
            return &[];
        }
        self.by_name.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Classifies one call op in the context of the function that
    /// contains it.
    pub fn classify(&self, op: &CallOp, ctx: &FnNode) -> Classified {
        if op.method {
            // `.lock()` is primitive-first: a same-crate fn named
            // `lock` shadowing Mutex::lock is vanishingly unlikely,
            // while missing a real acquisition breaks the lint.
            if op.name == "lock" && op.empty_arity {
                return Classified::Lock {
                    lock: self.lock_id(&op.receiver, ctx),
                    guard: op.binding.clone(),
                };
            }
            let targets = self.resolve(&op.name);
            if !targets.is_empty() {
                return Classified::Calls(targets.to_vec());
            }
            return match op.name.as_str() {
                "sync_all" | "sync_data" if op.empty_arity => Classified::Block {
                    kind: BlockKind::Io,
                    what: format!("File::{}", op.name),
                    wait_guard: None,
                },
                "wait" => Classified::Block {
                    kind: BlockKind::UnboundedWait,
                    what: "Condvar::wait".to_string(),
                    wait_guard: op.first_arg.clone(),
                },
                "wait_timeout" | "wait_timeout_while" => Classified::Block {
                    kind: BlockKind::BoundedWait,
                    what: format!("Condvar::{}", op.name),
                    wait_guard: op.first_arg.clone(),
                },
                "recv" if op.empty_arity => Classified::Block {
                    kind: BlockKind::UnboundedWait,
                    what: "channel recv".to_string(),
                    wait_guard: None,
                },
                "recv_timeout" => Classified::Block {
                    kind: BlockKind::BoundedWait,
                    what: "channel recv_timeout".to_string(),
                    wait_guard: None,
                },
                "join" if op.empty_arity => Classified::Block {
                    kind: BlockKind::UnboundedWait,
                    what: "thread join".to_string(),
                    wait_guard: None,
                },
                _ => Classified::Opaque,
            };
        }

        // Plain / path call.
        let segs: Vec<&str> = op
            .path
            .iter()
            .map(String::as_str)
            .filter(|s| !EXTERNAL_HEADS.contains(s))
            .collect();
        if segs.contains(&"fs") {
            return Classified::Block {
                kind: BlockKind::Io,
                what: format!("fs::{}", op.name),
                wait_guard: None,
            };
        }
        match segs.as_slice() {
            ["File", m @ ("open" | "create" | "create_new" | "options")] => {
                return Classified::Block {
                    kind: BlockKind::Io,
                    what: format!("File::{m}"),
                    wait_guard: None,
                }
            }
            ["OpenOptions", "new"] => {
                return Classified::Block {
                    kind: BlockKind::Io,
                    what: "OpenOptions::new".to_string(),
                    wait_guard: None,
                }
            }
            _ => {}
        }
        match op.name.as_str() {
            "sleep" | "sleep_ms" => {
                return Classified::Block {
                    kind: BlockKind::Sleep,
                    what: "thread::sleep".to_string(),
                    wait_guard: None,
                }
            }
            "park_timeout" => {
                return Classified::Block {
                    kind: BlockKind::BoundedWait,
                    what: "thread::park_timeout".to_string(),
                    wait_guard: None,
                }
            }
            "park" if segs.len() > 1 => {
                return Classified::Block {
                    kind: BlockKind::UnboundedWait,
                    what: "thread::park".to_string(),
                    wait_guard: None,
                }
            }
            _ => {}
        }
        let targets = self.resolve(&op.name);
        if !targets.is_empty() {
            Classified::Calls(targets.to_vec())
        } else {
            Classified::Opaque
        }
    }

    /// Stable identity for the lock behind a `.lock()` receiver:
    /// `Owner.field` for `self.field.lock()`, otherwise the receiver
    /// path qualified by the file stem.
    fn lock_id(&self, receiver: &[String], ctx: &FnNode) -> String {
        match receiver {
            [root, rest @ ..] if root == "self" && !rest.is_empty() => {
                let owner = ctx.owner.as_deref().unwrap_or(ctx.stem.as_str());
                format!("{owner}.{}", rest.join("."))
            }
            [] => format!("{}.<expr>", ctx.stem),
            segs => format!("{}:{}", ctx.stem, segs.join(".")),
        }
    }

    /// The lock ids a function may acquire, transitively through
    /// *uniquely* resolving calls (multi-candidate name resolution is
    /// too coarse for ordering edges). Returned per function index.
    pub fn locks_acquired(&self) -> Vec<Vec<String>> {
        let mut acquired: Vec<Vec<String>> = vec![Vec::new(); self.fns.len()];
        // Direct acquisitions.
        for (i, f) in self.fns.iter().enumerate() {
            for op in &f.ops {
                if let Op::Call(c) = op {
                    if let Classified::Lock { lock, .. } = self.classify(c, f) {
                        if !acquired[i].contains(&lock) {
                            acquired[i].push(lock);
                        }
                    }
                }
            }
        }
        // Propagate through unique call edges to a fixed point.
        loop {
            let mut changed = false;
            for i in 0..self.fns.len() {
                let f = &self.fns[i];
                let mut gained: Vec<String> = Vec::new();
                for op in &f.ops {
                    let Op::Call(c) = op else { continue };
                    let Classified::Calls(targets) = self.classify(c, f) else {
                        continue;
                    };
                    if let [t] = targets.as_slice() {
                        for lock in &acquired[*t] {
                            if !acquired[i].contains(lock) && !gained.contains(lock) {
                                gained.push(lock.clone());
                            }
                        }
                    }
                }
                if !gained.is_empty() {
                    acquired[i].extend(gained);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        acquired
    }

    /// Whether `fn_idx` can reach a blocking primitive, transitively
    /// through same-crate calls. Returns a human-readable chain like
    /// `pop → Condvar::wait (unbounded wait) at crates/.../recording.rs:193`
    /// for the first (deterministic) one found. Waivers are deliberately
    /// ignored: a waived wait still blocks its caller.
    pub fn block_reach(
        &self,
        fn_idx: usize,
        memo: &mut BTreeMap<usize, Option<String>>,
    ) -> Option<String> {
        if let Some(hit) = memo.get(&fn_idx) {
            return hit.clone();
        }
        // Mark in-progress as non-blocking so recursion terminates;
        // a real block elsewhere in the cycle still surfaces.
        memo.insert(fn_idx, None);
        let f = &self.fns[fn_idx];
        let mut found: Option<String> = None;
        for op in &f.ops {
            let Op::Call(c) = op else { continue };
            match self.classify(c, f) {
                Classified::Block { kind, what, .. } => {
                    found = Some(format!(
                        "{} → {what} ({}) at {}:{}",
                        f.display(),
                        kind.label(),
                        f.rel,
                        c.line
                    ));
                    break;
                }
                Classified::Calls(targets) => {
                    for t in targets {
                        if let Some(chain) = self.block_reach(t, memo) {
                            found = Some(format!("{} → {chain}", f.display()));
                            break;
                        }
                    }
                    if found.is_some() {
                        break;
                    }
                }
                _ => {}
            }
        }
        memo.insert(fn_idx, found.clone());
        found
    }
}

/// Per-crate graphs for a workspace.
#[derive(Clone, Debug, Default)]
pub struct WorkspaceGraph {
    /// Crate name → its graph.
    pub crates: BTreeMap<String, CrateGraph>,
}

/// Crate name of a workspace-relative path (`crates/serve/src/x.rs` →
/// `serve`; `xtests/src/x.rs` → `xtests`).
pub fn crate_of(rel: &str) -> Option<&str> {
    if let Some(rest) = rel.strip_prefix("crates/") {
        return rest.split('/').next();
    }
    if rel.starts_with("xtests/src/") {
        return Some("xtests");
    }
    None
}

fn file_stem(rel: &str) -> &str {
    rel.rsplit('/')
        .next()
        .unwrap_or(rel)
        .trim_end_matches(".rs")
}

/// Builds the per-crate graphs for every file of the workspace.
pub fn build_graph(ws: &Workspace) -> WorkspaceGraph {
    let mut crates: BTreeMap<String, CrateGraph> = BTreeMap::new();
    for (file_idx, file) in ws.files.iter().enumerate() {
        let Some(krate) = crate_of(&file.rel) else {
            continue;
        };
        let graph = crates
            .entry(krate.to_string())
            .or_insert_with(|| CrateGraph {
                name: krate.to_string(),
                ..CrateGraph::default()
            });
        let code = &file.lexed.code;
        for item in &file.parsed.fns {
            let ops = match item.body {
                Some((start, end)) => extract_ops(code, start, end, &file.lexed),
                None => Vec::new(),
            };
            let returns_guard = code
                .get(item.sig.0..item.sig.1)
                .is_some_and(|sig| sig.contains("MutexGuard"));
            let idx = graph.fns.len();
            graph.fns.push(FnNode {
                file: file_idx,
                rel: file.rel.clone(),
                stem: file_stem(&file.rel).to_string(),
                name: item.name.clone(),
                owner: item.owner.clone(),
                line: item.line,
                ops,
                returns_guard,
            });
            graph
                .by_name
                .entry(item.name.clone())
                .or_default()
                .push(idx);
        }
    }
    WorkspaceGraph { crates }
}

/// Rust keywords that look like call names when followed by `(`.
const CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "else", "fn", "let", "in", "as", "move",
    "ref", "mut", "pub", "use", "where", "impl", "dyn", "box", "await", "unsafe",
];

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Scans one body span of a code view for operations, in order.
fn extract_ops(code: &str, start: usize, end: usize, lexed: &crate::Lexed) -> Vec<Op> {
    let bytes = code.as_bytes();
    let end = end.min(bytes.len());
    let mut ops = Vec::new();
    let mut i = start;
    while i < end {
        let Some(&b) = bytes.get(i) else { break };
        if !(b.is_ascii_alphabetic() || b == b'_') {
            i += 1;
            continue;
        }
        let word_start = i;
        while i < end && bytes.get(i).copied().is_some_and(is_ident_byte) {
            i += 1;
        }
        if word_start > 0
            && bytes
                .get(word_start - 1)
                .copied()
                .is_some_and(is_ident_byte)
        {
            continue;
        }
        let word = &code[word_start..i];
        if CALL_KEYWORDS.contains(&word) {
            continue;
        }
        // Skip turbofish between name and `(`: `parse::<u32>(s)`.
        let mut j = i;
        if bytes.get(j) == Some(&b':')
            && bytes.get(j + 1) == Some(&b':')
            && bytes.get(j + 2) == Some(&b'<')
        {
            let mut depth = 0usize;
            let mut k = j + 2;
            while k < end {
                match bytes.get(k) {
                    Some(b'<') => depth += 1,
                    Some(b'>') => {
                        depth = depth.saturating_sub(1);
                        if depth == 0 {
                            k += 1;
                            break;
                        }
                    }
                    None => break,
                    _ => {}
                }
                k += 1;
            }
            j = k;
        }
        while j < end && bytes.get(j).is_some_and(|b| b.is_ascii_whitespace()) {
            j += 1;
        }
        if bytes.get(j) == Some(&b'!') {
            continue; // macro invocation, not a call
        }
        if bytes.get(j) != Some(&b'(') {
            continue;
        }
        // A call site. Method or plain?
        let mut p = word_start;
        while p > start && bytes.get(p - 1).is_some_and(|b| b.is_ascii_whitespace()) {
            p -= 1;
        }
        let method = p > start && bytes.get(p - 1) == Some(&b'.');
        let (receiver, chain_start) = if method {
            receiver_chain(bytes, p - 1, start)
        } else {
            (Vec::new(), word_start)
        };
        let path = if method {
            vec![word.to_string()]
        } else {
            path_segments(bytes, word_start, start, word)
        };
        // Argument shape.
        let mut a = j + 1;
        while a < end && bytes.get(a).is_some_and(|b| b.is_ascii_whitespace()) {
            a += 1;
        }
        let empty_arity = bytes.get(a) == Some(&b')');
        let first_arg = {
            let arg_start = a;
            let mut k = a;
            while k < end && bytes.get(k).copied().is_some_and(is_ident_byte) {
                k += 1;
            }
            if k > arg_start {
                let mut w = k;
                while w < end && bytes.get(w).is_some_and(|b| b.is_ascii_whitespace()) {
                    w += 1;
                }
                if matches!(bytes.get(w), Some(b')') | Some(b',')) {
                    Some(code[arg_start..k].to_string())
                } else {
                    None
                }
            } else {
                None
            }
        };
        let expr_start = if method {
            chain_start
        } else {
            // Back up over the path prefix (`a::b::name`).
            let mut s = word_start;
            while s >= 2 && bytes.get(s - 1) == Some(&b':') && bytes.get(s - 2) == Some(&b':') {
                let mut t = s - 2;
                while t > start && bytes.get(t - 1).copied().is_some_and(is_ident_byte) {
                    t -= 1;
                }
                if t == s - 2 {
                    break;
                }
                s = t;
            }
            s
        };
        let binding = let_binding(bytes, expr_start, start);
        let line = lexed.line_of(word_start);
        if !method && word == "drop" && path.len() == 1 {
            if let (Some(ident), false) = (&first_arg, empty_arity) {
                ops.push(Op::Drop {
                    ident: ident.clone(),
                    line,
                });
                continue;
            }
        }
        ops.push(Op::Call(CallOp {
            name: word.to_string(),
            method,
            path,
            receiver,
            empty_arity,
            first_arg,
            binding,
            line,
        }));
    }
    ops
}

/// Walks a method receiver chain backwards from the `.` at `dot`.
/// Returns the ident segments (leftmost first) and the byte offset the
/// chain starts at. Call-result links (`f().m()`) terminate the ident
/// chain but are still walked for the start offset.
fn receiver_chain(bytes: &[u8], dot: usize, lo: usize) -> (Vec<String>, usize) {
    let mut segs: Vec<String> = Vec::new();
    let mut start = dot;
    let mut k = dot;
    let mut idents_live = true;
    loop {
        // k points just past the element we want (a `.` or chain head).
        let mut p = k;
        while p > lo && bytes.get(p - 1).is_some_and(|b| b.is_ascii_whitespace()) {
            p -= 1;
        }
        if p == lo {
            break;
        }
        match bytes.get(p - 1) {
            Some(b'?') => {
                k = p - 1;
                continue;
            }
            Some(b')') | Some(b']') => {
                // Balanced group: skip it, then an optional ident
                // (the called name) before it.
                let close = bytes[p - 1];
                let open = if close == b')' { b'(' } else { b'[' };
                let mut depth = 0usize;
                let mut q = p - 1;
                while let Some(&c) = bytes.get(q) {
                    if c == close {
                        depth += 1;
                    } else if c == open {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    if q == lo {
                        break;
                    }
                    q -= 1;
                }
                idents_live = false; // segments left of a call are not a plain path
                segs.clear();
                let mut t = q;
                while t > lo && bytes.get(t - 1).copied().is_some_and(is_ident_byte) {
                    t -= 1;
                }
                start = t;
                k = t;
            }
            Some(&c) if is_ident_byte(c) => {
                let mut t = p;
                while t > lo && bytes.get(t - 1).copied().is_some_and(is_ident_byte) {
                    t -= 1;
                }
                if idents_live {
                    segs.insert(0, String::from_utf8_lossy(&bytes[t..p]).into_owned());
                }
                start = t;
                k = t;
            }
            _ => break,
        }
        // Continue only through a further `.`.
        let mut p2 = k;
        while p2 > lo && bytes.get(p2 - 1).is_some_and(|b| b.is_ascii_whitespace()) {
            p2 -= 1;
        }
        if p2 > lo && bytes.get(p2 - 1) == Some(&b'.') {
            k = p2 - 1;
        } else {
            break;
        }
    }
    (segs, start)
}

/// Path segments of a plain call: walks `a::b::name` backwards from
/// the name and returns all segments in order.
fn path_segments(bytes: &[u8], name_start: usize, lo: usize, name: &str) -> Vec<String> {
    let mut segs = vec![name.to_string()];
    let mut s = name_start;
    while s >= lo + 2 && bytes.get(s - 1) == Some(&b':') && bytes.get(s - 2) == Some(&b':') {
        let seg_end = s - 2;
        let mut t = seg_end;
        while t > lo && bytes.get(t - 1).copied().is_some_and(is_ident_byte) {
            t -= 1;
        }
        if t == seg_end {
            break; // `::<turbofish>` or `<T>::name` — stop at the gap
        }
        segs.insert(0, String::from_utf8_lossy(&bytes[t..seg_end]).into_owned());
        s = t;
    }
    segs
}

/// When the expression starting at `expr_start` is the initializer of
/// a `let [mut] NAME = ...;` statement, returns NAME.
fn let_binding(bytes: &[u8], expr_start: usize, lo: usize) -> Option<String> {
    // Scan back to the statement boundary.
    let mut s = expr_start;
    while s > lo {
        match bytes.get(s - 1) {
            Some(b';') | Some(b'{') | Some(b'}') => break,
            _ => s -= 1,
        }
    }
    let prefix = String::from_utf8_lossy(&bytes[s..expr_start]);
    let mut toks = prefix.split_whitespace();
    if toks.next() != Some("let") {
        return None;
    }
    let mut name = toks.next()?;
    if name == "mut" {
        name = toks.next()?;
    }
    if toks.next() != Some("=") || toks.next().is_some() {
        return None;
    }
    if name.bytes().all(is_ident_byte) && !name.is_empty() {
        Some(name.to_string())
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph_for(sources: &[(&str, &str)]) -> WorkspaceGraph {
        build_graph(&Workspace::from_sources(sources))
    }

    #[test]
    fn calls_resolve_within_a_crate_only() {
        let g = graph_for(&[
            (
                "crates/serve/src/a.rs",
                "fn caller() { helper(); other::helper2(); cross(); }\nfn helper() {}\n",
            ),
            ("crates/serve/src/b.rs", "pub fn helper2() {}\n"),
            ("crates/store/src/lib.rs", "pub fn cross() {}\n"),
        ]);
        let serve = &g.crates["serve"];
        assert_eq!(serve.fns.len(), 3);
        let caller = &serve.fns[0];
        assert_eq!(caller.name, "caller");
        let calls: Vec<&str> = caller
            .ops
            .iter()
            .filter_map(|o| match o {
                Op::Call(c) => Some(c.name.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(calls, vec!["helper", "helper2", "cross"]);
        assert_eq!(serve.resolve("helper").len(), 1);
        assert_eq!(serve.resolve("helper2").len(), 1, "cross-file, same crate");
        assert_eq!(serve.resolve("cross").len(), 0, "cross-crate unresolved");
        assert_eq!(serve.resolve("drop").len(), 0, "stoplist");
    }

    #[test]
    fn lock_sites_classify_with_owner_and_binding() {
        let src = "\
struct Q;
impl Q {
    fn push(&self) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.count += 1;
        drop(inner);
    }
    fn quick(&self) -> u64 {
        self.stats.lock().unwrap().count
    }
}
";
        let g = graph_for(&[("crates/serve/src/q.rs", src)]);
        let serve = &g.crates["serve"];
        let push = serve.fns.iter().find(|f| f.name == "push").unwrap();
        let lock_op = push
            .ops
            .iter()
            .find_map(|o| match o {
                Op::Call(c) if c.name == "lock" => Some(c),
                _ => None,
            })
            .expect("lock op");
        match serve.classify(lock_op, push) {
            Classified::Lock { lock, guard } => {
                assert_eq!(lock, "Q.inner");
                assert_eq!(guard.as_deref(), Some("inner"));
            }
            other => panic!("expected Lock, got {other:?}"),
        }
        assert!(
            push.ops
                .iter()
                .any(|o| matches!(o, Op::Drop { ident, .. } if ident == "inner")),
            "drop(inner) recorded"
        );
        let quick = serve.fns.iter().find(|f| f.name == "quick").unwrap();
        let lock_op = quick
            .ops
            .iter()
            .find_map(|o| match o {
                Op::Call(c) if c.name == "lock" => Some(c),
                _ => None,
            })
            .unwrap();
        match serve.classify(lock_op, quick) {
            Classified::Lock { lock, guard } => {
                assert_eq!(lock, "Q.stats");
                assert_eq!(guard, None, "statement temporary has no binding");
            }
            other => panic!("expected Lock, got {other:?}"),
        }
    }

    #[test]
    fn primitives_classify_by_kind() {
        let src = "\
fn worker(&self) {
    std::thread::sleep(d);
    std::thread::park_timeout(d);
    let x = self.rx.recv();
    let h = handle.join();
    std::fs::rename(a, b);
    file.sync_all();
    inner = self.not_empty.wait(inner);
}
";
        let g = graph_for(&[("crates/serve/src/w.rs", src)]);
        let serve = &g.crates["serve"];
        let worker = &serve.fns[0];
        let mut kinds = Vec::new();
        for op in &worker.ops {
            if let Op::Call(c) = op {
                if let Classified::Block {
                    kind,
                    what,
                    wait_guard,
                } = serve.classify(c, worker)
                {
                    kinds.push((what, kind, wait_guard));
                }
            }
        }
        let names: Vec<&str> = kinds.iter().map(|(w, _, _)| w.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "thread::sleep",
                "thread::park_timeout",
                "channel recv",
                "thread join",
                "fs::rename",
                "File::sync_all",
                "Condvar::wait",
            ],
            "{kinds:?}"
        );
        assert_eq!(kinds[0].1, BlockKind::Sleep);
        assert_eq!(kinds[1].1, BlockKind::BoundedWait);
        assert_eq!(kinds[2].1, BlockKind::UnboundedWait);
        assert_eq!(kinds[6].2.as_deref(), Some("inner"), "wait guard captured");
    }

    #[test]
    fn block_reach_follows_the_call_graph() {
        let src = "\
fn root() { middle(); }
fn middle() { leaf(); }
fn leaf() { std::thread::sleep(d); }
fn clean() { let x = 1; }
";
        let g = graph_for(&[("crates/serve/src/r.rs", src)]);
        let serve = &g.crates["serve"];
        let mut memo = BTreeMap::new();
        let root = serve.fns.iter().position(|f| f.name == "root").unwrap();
        let chain = serve.block_reach(root, &mut memo).expect("root blocks");
        assert!(chain.contains("root") && chain.contains("middle") && chain.contains("leaf"));
        assert!(chain.contains("sleep"), "{chain}");
        let clean = serve.fns.iter().position(|f| f.name == "clean").unwrap();
        assert!(serve.block_reach(clean, &mut memo).is_none());
    }

    #[test]
    fn recursion_terminates_and_locks_propagate_uniquely() {
        let src = "\
struct S;
impl S {
    fn a(&self) { self.b(); }
    fn b(&self) { self.a(); let g = self.m.lock().unwrap(); drop(g); }
}
";
        let g = graph_for(&[("crates/serve/src/s.rs", src)]);
        let serve = &g.crates["serve"];
        let acq = serve.locks_acquired();
        let a = serve.fns.iter().position(|f| f.name == "a").unwrap();
        let b = serve.fns.iter().position(|f| f.name == "b").unwrap();
        assert!(acq[b].contains(&"S.m".to_string()));
        assert!(
            acq[a].contains(&"S.m".to_string()),
            "transitive via unique call"
        );
        let mut memo = BTreeMap::new();
        assert!(
            serve.block_reach(a, &mut memo).is_none(),
            "no primitive in cycle"
        );
    }

    #[test]
    fn wrapped_chains_and_turbofish_do_not_confuse_extraction() {
        let src = "\
fn f(&self) {
    let inner = self.inner.lock()
        .unwrap_or_else(|e| e.into_inner());
    let n = text.parse::<u32>(s);
    vec.push(x);
}
";
        let g = graph_for(&[("crates/serve/src/c.rs", src)]);
        let f = &g.crates["serve"].fns[0];
        let lock = f
            .ops
            .iter()
            .find_map(|o| match o {
                Op::Call(c) if c.name == "lock" => Some(c),
                _ => None,
            })
            .expect("lock found");
        assert_eq!(lock.receiver, vec!["self", "inner"]);
        assert_eq!(lock.binding.as_deref(), Some("inner"));
        assert!(
            f.ops
                .iter()
                .any(|o| matches!(o, Op::Call(c) if c.name == "parse")),
            "turbofish call recorded"
        );
        let push = f
            .ops
            .iter()
            .find_map(|o| match o {
                Op::Call(c) if c.name == "push" => Some(c),
                _ => None,
            })
            .unwrap();
        assert_eq!(push.receiver, vec!["vec"]);
        assert_eq!(push.binding, None);
    }
}
