//! Unsafe-ban lint: the workspace is 100% safe Rust, enforced at every
//! crate root.
//!
//! Two checks: every crate root (`crates/*/src/lib.rs`,
//! `crates/*/src/main.rs` for binary-only crates, `xtests/src/lib.rs`)
//! declares `#![forbid(unsafe_code)]`, and no non-test code anywhere
//! contains the `unsafe` keyword. The forbid attribute makes the
//! compiler the enforcer; the keyword scan catches code that would
//! fail that enforcement before it reaches a build.

use crate::lexer::find_token_lines;
use crate::{Finding, Lint, Outcome, Workspace};

/// The unsafe-ban lint.
pub struct UnsafeBan;

impl Lint for UnsafeBan {
    fn name(&self) -> &'static str {
        "unsafe-ban"
    }

    fn invariant(&self) -> &'static str {
        "every crate root declares #![forbid(unsafe_code)] and no first-party code uses the `unsafe` keyword"
    }

    fn check(&self, ws: &Workspace, out: &mut Outcome) {
        // Crate roots: lib.rs, or main.rs when the crate has no lib.rs.
        for file in &ws.files {
            let is_lib = file.rel.ends_with("/src/lib.rs");
            let is_main = file.rel.ends_with("/src/main.rs") && {
                let lib = file.rel.replace("/src/main.rs", "/src/lib.rs");
                ws.file(&lib).is_none()
            };
            if (is_lib || is_main) && !file.lexed.code.contains("forbid(unsafe_code)") {
                out.findings.push(Finding {
                    file: file.rel.clone(),
                    line: 1,
                    lint: self.name(),
                    message: "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
                });
            }
        }
        // No `unsafe` keyword anywhere outside tests.
        for file in &ws.files {
            for line in find_token_lines(&file.lexed, "unsafe") {
                if file.lexed.is_test_line(line) {
                    continue;
                }
                out.findings.push(Finding {
                    file: file.rel.clone(),
                    line,
                    lint: self.name(),
                    message: "`unsafe` keyword in first-party code: the workspace \
                              invariant is 100% safe Rust"
                        .to_string(),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run;

    #[test]
    fn fires_on_missing_forbid_and_unsafe_block_fixtures() {
        let ws = Workspace::from_sources(&[
            ("crates/bad/src/lib.rs", "pub fn f() {}\n"),
            (
                "crates/worse/src/lib.rs",
                "#![forbid(unsafe_code)]\npub fn g(p: *const u8) -> u8 { unsafe { *p } }\n",
            ),
        ]);
        let f = run(&ws, &[Box::new(UnsafeBan)]);
        assert!(
            f.iter()
                .any(|x| x.file == "crates/bad/src/lib.rs" && x.message.contains("forbid")),
            "{f:?}"
        );
        assert!(
            f.iter()
                .any(|x| x.file == "crates/worse/src/lib.rs" && x.line == 2),
            "{f:?}"
        );
    }

    #[test]
    fn main_rs_counts_as_root_only_without_lib_rs() {
        let ws = Workspace::from_sources(&[
            ("crates/bin/src/main.rs", "fn main() {}\n"),
            ("crates/mixed/src/lib.rs", "#![forbid(unsafe_code)]\n"),
            ("crates/mixed/src/main.rs", "fn main() {}\n"),
        ]);
        let f = run(&ws, &[Box::new(UnsafeBan)]);
        assert!(
            f.iter().any(|x| x.file == "crates/bin/src/main.rs"),
            "bin-only main.rs is a root: {f:?}"
        );
        assert!(
            !f.iter().any(|x| x.file == "crates/mixed/src/main.rs"),
            "main.rs next to lib.rs is not a root: {f:?}"
        );
    }

    #[test]
    fn comments_strings_and_tests_are_exempt() {
        let ws = Workspace::from_sources(&[(
            "crates/ok/src/lib.rs",
            "\
#![forbid(unsafe_code)]
// the word unsafe in a comment is fine
pub fn f() -> &'static str { \"unsafe\" }

#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        // even a test may mention it in a string
        assert_eq!(super::f(), \"unsafe\");
    }
}
",
        )]);
        assert_eq!(run(&ws, &[Box::new(UnsafeBan)]), vec![]);
    }
}
