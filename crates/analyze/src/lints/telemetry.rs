//! Telemetry-exhaustiveness lint: every `Event` variant round-trips
//! through the JSONL exporter.
//!
//! `telemetry::export` encodes events to JSONL and parses them back;
//! the replay tooling depends on the round trip being lossless. Both
//! `event_to_json` and `parse_event` are `match` arms over
//! `Event::Variant`, so a variant that appears fewer than twice in
//! `export.rs` is missing from at least one side. The variant
//! inventory is extracted lexically from the `pub enum Event`
//! declaration in `event.rs` — the same inventory the exhaustive
//! round-trip test in `xtests` is generated from, so a new variant
//! fails both until it is wired through.

use crate::lexer::Lexed;
use crate::{Finding, Lint, Outcome, Workspace};

/// File declaring `pub enum Event`.
const EVENT_FILE: &str = "crates/telemetry/src/event.rs";
/// File hosting both JSONL encode and parse arms.
const EXPORT_FILE: &str = "crates/telemetry/src/export.rs";

/// The telemetry-exhaustiveness lint.
pub struct TelemetryExhaustive;

impl Lint for TelemetryExhaustive {
    fn name(&self) -> &'static str {
        "telemetry-exhaustive"
    }

    fn invariant(&self) -> &'static str {
        "every telemetry::Event variant appears in export.rs in both the JSONL encode match and the parse match (>= 2 `Event::V` mentions)"
    }

    fn check(&self, ws: &Workspace, out: &mut Outcome) {
        let Some(event_file) = ws.file(EVENT_FILE) else {
            return;
        };
        let variants = event_variants_lexed(&event_file.lexed);
        let Some(export) = ws.file(EXPORT_FILE) else {
            if !variants.is_empty() {
                out.findings.push(Finding {
                    file: EVENT_FILE.to_string(),
                    line: 1,
                    lint: self.name(),
                    message: "Event variants exist but export.rs is missing".to_string(),
                });
            }
            return;
        };
        // Count `Event::V` mentions in non-test export code.
        let code_lines: Vec<&str> = export.lexed.code.lines().collect();
        for (variant, decl_line) in &variants {
            let needle = format!("Event::{variant}");
            let mut count = 0usize;
            for (idx, l) in code_lines.iter().enumerate() {
                if export.lexed.is_test_line(idx + 1) {
                    continue;
                }
                count += count_word_matches(l, &needle);
            }
            if count < 2 {
                out.findings.push(Finding {
                    file: EVENT_FILE.to_string(),
                    line: *decl_line,
                    lint: self.name(),
                    message: format!(
                        "Event::{variant} appears {count} time(s) in export.rs \
                         non-test code; the JSONL encode match and the parse \
                         match must both handle it (expected >= 2)"
                    ),
                });
            }
        }
    }
}

/// Word-bounded occurrences of `needle` in `line` — so `Event::Decision`
/// does not match `Event::DecisionOther`.
fn count_word_matches(line: &str, needle: &str) -> usize {
    let bytes = line.as_bytes();
    line.match_indices(needle)
        .filter(|(pos, _)| {
            let end = pos + needle.len();
            end >= bytes.len() || !(bytes[end].is_ascii_alphanumeric() || bytes[end] == b'_')
        })
        .count()
}

/// Extracts the variant names of `pub enum Event` from a lexed
/// `event.rs`: identifiers at brace depth 1 inside the enum body that
/// start a variant (first token after `{`, `,`, or a closed variant
/// payload).
fn event_variants_lexed(lexed: &Lexed) -> Vec<(String, usize)> {
    let code = &lexed.code;
    let Some(enum_pos) = code.find("pub enum Event") else {
        return Vec::new();
    };
    let Some(open_rel) = code[enum_pos..].find('{') else {
        return Vec::new();
    };
    let body_start = enum_pos + open_rel + 1;
    let bytes = code.as_bytes();
    let mut depth = 1usize;
    let mut i = body_start;
    let mut variants = Vec::new();
    let mut expecting_variant = true;
    while i < bytes.len() && depth > 0 {
        let b = bytes[i];
        match b {
            b'{' | b'(' => {
                depth += 1;
                i += 1;
            }
            b'}' | b')' => {
                depth -= 1;
                i += 1;
            }
            b',' if depth == 1 => {
                expecting_variant = true;
                i += 1;
            }
            b'#' if depth == 1 => {
                // Variant attribute: skip the `[...]` group.
                i += 1;
                let mut adepth = 0usize;
                while i < bytes.len() {
                    match bytes[i] {
                        b'[' => adepth += 1,
                        b']' => {
                            adepth -= 1;
                            if adepth == 0 {
                                i += 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                    i += 1;
                }
            }
            _ if depth == 1 && expecting_variant && (b.is_ascii_alphabetic() || b == b'_') => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                let name = code[start..i].to_string();
                let line = lexed.line_of(start);
                variants.push((name, line));
                expecting_variant = false;
            }
            _ => {
                i += 1;
            }
        }
    }
    variants
}

/// Public variant-inventory helper: names of `pub enum Event` variants
/// in declaration order, extracted from `event.rs` source text. The
/// exhaustive round-trip test in `xtests` uses this same function, so
/// the analyzer and the test can never disagree about the inventory.
pub fn event_variants(event_rs_source: &str) -> Vec<String> {
    event_variants_lexed(&crate::lex(event_rs_source))
        .into_iter()
        .map(|(name, _)| name)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run;

    const EVENT_SRC: &str = "\
/// Events.
pub enum Event {
    /// A decision.
    Decision { client: u32, seq: u64 },
    /// A rate change.
    RateChange(u8),
    /// A handoff.
    Handoff,
}
";

    #[test]
    fn inventory_extraction_handles_payload_shapes() {
        assert_eq!(
            event_variants(EVENT_SRC),
            vec!["Decision", "RateChange", "Handoff"]
        );
        // Field names and types at depth 2 never leak into the
        // inventory; doc comments are blanked by the lexer.
        let tricky = "\
pub enum Event {
    A { nested: Vec<(u32, u64)>, other: [u8; 4] },
    #[doc = \"attr\"]
    B(Box<Event>),
}
";
        assert_eq!(event_variants(tricky), vec!["A", "B"]);
    }

    #[test]
    fn fires_when_a_variant_misses_an_arm() {
        // Handoff appears once (encode only), RateChange not at all.
        let export = "\
fn event_to_json(e: &Event) -> String {
    match e {
        Event::Decision { .. } => String::new(),
        Event::Handoff => String::new(),
        _ => String::new(),
    }
}
fn parse_event(s: &str) -> Option<Event> {
    let _ = s;
    Some(Event::Decision { client: 0, seq: 0 })
}
";
        let ws = Workspace::from_sources(&[
            ("crates/telemetry/src/event.rs", EVENT_SRC),
            ("crates/telemetry/src/export.rs", export),
        ]);
        let f = run(&ws, &[Box::new(TelemetryExhaustive)]);
        assert!(
            f.iter().any(|x| x.message.contains("Event::RateChange")),
            "{f:?}"
        );
        assert!(f.iter().any(|x| x.message.contains("Event::Handoff")));
        assert!(
            !f.iter().any(|x| x.message.contains("Event::Decision ")),
            "Decision has both arms: {f:?}"
        );
    }

    #[test]
    fn passes_when_every_variant_has_both_arms() {
        let export = "\
fn event_to_json(e: &Event) -> String {
    match e {
        Event::Decision { .. } => String::new(),
        Event::RateChange(_) => String::new(),
        Event::Handoff => String::new(),
    }
}
fn parse_event(tag: &str) -> Option<Event> {
    match tag {
        \"decision\" => Some(Event::Decision { client: 0, seq: 0 }),
        \"rate_change\" => Some(Event::RateChange(0)),
        \"handoff\" => Some(Event::Handoff),
        _ => None,
    }
}
";
        let ws = Workspace::from_sources(&[
            ("crates/telemetry/src/event.rs", EVENT_SRC),
            ("crates/telemetry/src/export.rs", export),
        ]);
        assert_eq!(run(&ws, &[Box::new(TelemetryExhaustive)]), vec![]);
    }

    #[test]
    fn test_code_mentions_do_not_count() {
        let export = "\
fn event_to_json(e: &Event) -> String { match e { Event::Handoff => String::new(), _ => String::new() } }
#[cfg(test)]
mod tests {
    fn f() { let _ = (Event::Handoff, Event::Decision { client: 0, seq: 0 }, Event::RateChange(0)); }
    fn g() { let _ = (Event::Decision { client: 0, seq: 0 }, Event::RateChange(0)); }
}
";
        let ws = Workspace::from_sources(&[
            ("crates/telemetry/src/event.rs", EVENT_SRC),
            ("crates/telemetry/src/export.rs", export),
        ]);
        let f = run(&ws, &[Box::new(TelemetryExhaustive)]);
        // All three variants are under-mentioned in non-test code.
        assert_eq!(f.len(), 3, "{f:?}");
    }
}
