//! Panic-discipline lint: hot paths return typed errors, they do not
//! panic.
//!
//! The serve frame path (`queue`, `recording`, `wire`), the session
//! hibernation path (`session::codec`, `session::hibernate` — a
//! fault-in runs while the client's frame waits), the store append,
//! compaction and promotion paths (`writer`, `segment`, `crc`,
//! `compact`, `manifest` — a panic mid-compaction strands a
//! half-promoted store), the shared CRC (`util::crc`),
//! and the socket edge's decode/reactor path (`edge::conn`,
//! `edge::reactor`) run on every served frame; a panic there takes
//! down the worker, poisons the writer, or kills the reactor thread
//! with live sockets open. Inside
//! those files the lint forbids `.unwrap()`, `.expect(`, `panic!`,
//! `unreachable!`, `todo!`, `unimplemented!`, and slice indexing
//! (`buf[i]`-style) in non-test code. `assert!`/`debug_assert!` are
//! deliberately allowed: contract checks at API boundaries are loud on
//! purpose.
//!
//! Waiver tags: `panic` (a panic site justified in place),
//! `checked-index` (an index expression whose bound is locally
//! provable, e.g. a const-sized table indexed by a masked byte), and
//! `poison-loud` (lock-poison `expect`s owned by the lock lint).

use crate::lexer::find_token_lines;
use crate::{Lint, Outcome, Workspace};

/// Files whose contents are per-frame hot paths.
const TARGET_FILES: &[&str] = &[
    "crates/serve/src/queue.rs",
    "crates/serve/src/recording.rs",
    "crates/serve/src/wire.rs",
    "crates/session/src/codec.rs",
    "crates/session/src/hibernate.rs",
    "crates/store/src/writer.rs",
    "crates/store/src/segment.rs",
    "crates/store/src/crc.rs",
    "crates/store/src/compact.rs",
    "crates/store/src/manifest.rs",
    "crates/util/src/crc.rs",
    "crates/edge/src/conn.rs",
    "crates/edge/src/reactor.rs",
];

/// Forbidden call tokens. `.unwrap()` is matched with its parens so
/// `.unwrap_or`/`.unwrap_or_else` stay legal; `.expect(` keeps
/// `.expect_err(` legal via the word boundary on `expect`.
const FORBIDDEN_CALLS: &[&str] = &[
    ".unwrap()",
    ".expect(",
    "panic!",
    "unreachable!",
    "todo!",
    "unimplemented!",
];

/// Keywords that legally precede `[` (array/slice type or pattern
/// contexts the index heuristic must not flag).
const KEYWORDS_BEFORE_BRACKET: &[&str] = &[
    "return", "break", "in", "if", "else", "match", "mut", "dyn", "as", "let",
];

/// The panic-discipline lint.
pub struct PanicDiscipline;

impl Lint for PanicDiscipline {
    fn name(&self) -> &'static str {
        "panic-paths"
    }

    fn invariant(&self) -> &'static str {
        "serve frame paths, session hibernation paths, store append/compaction paths, and edge socket paths (queue, recording, wire, session codec/hibernate, writer, segment, crc, compact, manifest, edge conn/reactor) never unwrap/expect/panic!/slice-index outside tests; fallible decode returns typed errors"
    }

    fn check(&self, ws: &Workspace, out: &mut Outcome) {
        for file in &ws.files {
            if !TARGET_FILES.contains(&file.rel.as_str()) {
                continue;
            }
            for token in FORBIDDEN_CALLS {
                for line in find_token_lines(&file.lexed, token) {
                    if file.lexed.is_test_line(line) {
                        continue;
                    }
                    out.site(
                        file,
                        line,
                        self.name(),
                        &["panic", "poison-loud"],
                        format!(
                            "`{token}` in a hot path: return a typed error \
                             (WireError/StoreError) instead, or waive with \
                             `// lint: panic -- <why this cannot fire>`",
                            token = token.trim_end_matches('(')
                        ),
                    );
                }
            }
            for line in index_expression_lines(&file.lexed.code) {
                if file.lexed.is_test_line(line) {
                    continue;
                }
                out.site(
                    file,
                    line,
                    self.name(),
                    &["checked-index"],
                    "slice indexing in a hot path can panic on a short \
                     buffer: use `.get(..)`/`chunks_exact`/slice patterns, \
                     or waive with `// lint: checked-index -- <bound proof>`",
                );
            }
        }
    }
}

/// 1-based lines containing an index *expression*: a `[` whose
/// previous non-space char ends a value (identifier char, `)`, or
/// `]`), excluding type/attribute/pattern contexts.
fn index_expression_lines(code: &str) -> Vec<usize> {
    let bytes = code.as_bytes();
    let mut lines = Vec::new();
    let mut line = 1usize;
    for (i, &b) in bytes.iter().enumerate() {
        if b == b'\n' {
            line += 1;
            continue;
        }
        if b != b'[' {
            continue;
        }
        // Previous non-space byte on any line.
        let mut j = i;
        while j > 0 && (bytes[j - 1] == b' ' || bytes[j - 1] == b'\n') {
            j -= 1;
        }
        if j == 0 {
            continue;
        }
        let prev = bytes[j - 1];
        let value_ending =
            prev.is_ascii_alphanumeric() || prev == b'_' || prev == b')' || prev == b']';
        if !value_ending {
            continue;
        }
        // `&[u8]`, `#[attr]`, `<[T]>`, `: [T; N]` are handled by the
        // value_ending test already (prev is `&`/`#`/`<`/`:` there) —
        // what remains is a keyword directly before the bracket, as in
        // `match [a, b]` or `for x in [1, 2]`.
        if prev.is_ascii_alphanumeric() || prev == b'_' {
            let mut w = j;
            while w > 0 && (bytes[w - 1].is_ascii_alphanumeric() || bytes[w - 1] == b'_') {
                w -= 1;
            }
            let word = &code[w..j];
            if KEYWORDS_BEFORE_BRACKET.contains(&word) {
                continue;
            }
            // `&'a [u8]`: a lifetime before the bracket is a slice
            // type, not an index expression.
            if w > 0 && bytes[w - 1] == b'\'' {
                continue;
            }
        }
        lines.push(line);
    }
    lines.dedup();
    lines
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run, Finding};

    fn findings_for(src: &str) -> Vec<Finding> {
        let ws = Workspace::from_sources(&[("crates/serve/src/wire.rs", src)]);
        run(&ws, &[Box::new(PanicDiscipline)])
    }

    #[test]
    fn fires_on_known_bad_fixture() {
        let bad = "\
fn decode(buf: &[u8]) -> u32 {
    let magic = buf[0];
    let x: u32 = parse(buf).unwrap();
    let y: u32 = parse(buf).expect(\"parse\");
    if magic == 0 { panic!(\"zero\"); }
    x + y
}
";
        let f = findings_for(bad);
        assert!(
            f.iter()
                .any(|x| x.line == 2 && x.message.contains("indexing")),
            "{f:?}"
        );
        assert!(f
            .iter()
            .any(|x| x.line == 3 && x.message.contains(".unwrap")));
        assert!(f
            .iter()
            .any(|x| x.line == 4 && x.message.contains(".expect")));
        assert!(f
            .iter()
            .any(|x| x.line == 5 && x.message.contains("panic!")));
    }

    #[test]
    fn allows_safe_idioms_waivers_and_tests() {
        let ok = "\
const TABLE: [u32; 256] = [0; 256];

fn decode(buf: &[u8]) -> Option<(u8, u32)> {
    let first = *buf.first()?;
    let v = buf.get(1..5).map(|s| s.len() as u32)?;
    let masked = TABLE[(first & 0xFF) as usize]; // lint: checked-index -- index masked to u8
    let fallback = buf.first().copied().unwrap_or(0);
    let arr: [u8; 2] = [first, fallback];
    for b in [1u8, 2] { let _ = b; }
    assert!(v as usize <= buf.len());
    Some((arr[0], masked)) // lint: checked-index -- arr is [u8; 2]
}

#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        let buf = [1u8, 2, 3];
        assert_eq!(buf[0], super::decode(&buf).unwrap().0);
    }
}
";
        assert_eq!(findings_for(ok), vec![], "clean fixture must pass");
    }

    #[test]
    fn index_heuristic_separates_types_from_expressions() {
        let code = "\
fn f(a: &[u8], b: [u8; 4]) -> Vec<u8> {
    let x = a[0];
    let y: &[u8] = &b;
    let z = (a.len())[..];
    match [x, y[0]] { _ => {} }
    vec![1, 2]
}
fn g<'a>(s: &'a [u8]) -> &'a [u8] { s }
fn h(p: [u8; 2]) -> u8 { let [a, b] = p; a + b }
";
        let lines = index_expression_lines(code);
        assert!(lines.contains(&2), "a[0] is an index: {lines:?}");
        assert!(lines.contains(&4), "(a.len())[..] is an index");
        assert!(
            lines.contains(&5),
            "y[0] inside match scrutinee is an index"
        );
        assert!(!lines.contains(&1), "&[u8] param type is not");
        assert!(!lines.contains(&6), "vec![..] macro bang is not");
        assert!(!lines.contains(&8), "&'a [u8] lifetime slice type is not");
        assert!(!lines.contains(&9), "let [a, b] slice pattern is not");
    }

    #[test]
    fn unwrap_or_family_is_legal() {
        let ok = "\
fn f(x: Option<u32>) -> u32 {
    x.unwrap_or(0) + x.unwrap_or_else(|| 1) + x.unwrap_or_default()
}
fn g(r: Result<u32, u32>) -> u32 {
    r.expect_err(\"only in tests would this be bad\")
}
";
        // expect_err is outside the `.expect(` token thanks to the
        // word boundary; unwrap_or* never matches `.unwrap()`.
        let f = findings_for(ok);
        assert!(
            f.iter()
                .all(|x| !x.message.contains(".unwrap") || x.line != 2),
            "{f:?}"
        );
        assert_eq!(f, vec![]);
    }
}
