//! Hold-and-call lint: no blocking while holding a lock, and observed
//! lock acquisition order is acyclic — cross-function, through the
//! call graph.
//!
//! Two checks over the per-crate graphs of the threaded crates
//! (serve, store, edge, session):
//!
//! 1. **Hold-and-call.** Walking each function's operations in source
//!    order while tracking named guards, the lint flags any blocking
//!    primitive — or any call to a same-crate function that
//!    transitively reaches one — executed while a guard is held. A
//!    condvar wait is exempt with respect to its *own* guard (the wait
//!    releases it) but still counts against every other held guard.
//!    Calls whose receiver *is* a held guard (`inner.q.pop_front()`)
//!    are methods on the guarded data, not escapes. A call to a
//!    guard-returning function (`MutexGuard` in the return type) bound
//!    with `let` counts as acquiring that function's locks.
//!
//! 2. **Lock-order cycles.** Acquiring lock B (directly, or anywhere
//!    inside a *uniquely* resolved callee) while holding lock A
//!    records an observed edge A < B; a cycle in the per-crate edge
//!    graph means two call paths disagree about acquisition order — a
//!    latent deadlock. This extends the `lock-discipline` lint's
//!    declared-order check to orders nobody wrote down.
//!
//! Approximations (DESIGN.md §5.15): guards released by scope end
//! (rather than `drop()`/function end) can over-report — add a
//! `drop(guard)` or a waiver; cross-crate and trait-object calls are
//! invisible (false negatives); multi-candidate name resolution can
//! attribute a `Vec::push` to a queue's `push` (the finding still
//! points at a real blocking site in that `push`).
//!
//! Waiver tag: `hold-and-call` — for sites where blocking under the
//! lock is the design (e.g. a store writer serializing I/O behind its
//! mutex).

use std::collections::BTreeMap;

use crate::graph::{build_graph, Classified, CrateGraph, Op};
use crate::lints::locks::find_cycle;
use crate::{Lint, Outcome, Workspace};

/// Crates with enough threads and locks to deadlock.
const SCOPE: &[&str] = &["serve", "store", "edge", "session"];

/// The hold-and-call / lock-order-cycle lint.
pub struct HoldAndCall;

impl Lint for HoldAndCall {
    fn name(&self) -> &'static str {
        "hold-and-call"
    }

    fn invariant(&self) -> &'static str {
        "in serve/store/edge/session, no lock guard is held across a blocking primitive or a call that may block (condvar/channel waits, thread join, fs I/O, sleep), and observed lock acquisition order through the call graph is acyclic"
    }

    fn check(&self, ws: &Workspace, out: &mut Outcome) {
        let graphs = build_graph(ws);
        for krate in SCOPE {
            let Some(graph) = graphs.crates.get(*krate) else {
                continue;
            };
            check_crate(self.name(), graph, ws, out);
        }
    }
}

/// A held guard: binding name, lock identity, acquisition line.
struct Held {
    guard: String,
    lock: String,
    line: usize,
}

fn check_crate(lint: &'static str, graph: &CrateGraph, ws: &Workspace, out: &mut Outcome) {
    let locks_acq = graph.locks_acquired();
    let mut block_memo: BTreeMap<usize, Option<String>> = BTreeMap::new();
    // Observed acquisition-order edges: lock A held while acquiring B.
    let mut edges: BTreeMap<String, Vec<String>> = BTreeMap::new();
    let mut edge_sites: Vec<(String, usize, String, String)> = Vec::new();

    for f in &graph.fns {
        let Some(file) = ws.files.get(f.file) else {
            continue;
        };
        let mut held: Vec<Held> = Vec::new();
        for op in &f.ops {
            match op {
                Op::Drop { ident, .. } => held.retain(|h| &h.guard != ident),
                Op::Call(c) => match graph.classify(c, f) {
                    Classified::Lock { lock, guard } => {
                        if file.lexed.is_test_line(c.line) {
                            continue;
                        }
                        for h in &held {
                            record_edge(
                                &mut edges,
                                &mut edge_sites,
                                &h.lock,
                                &lock,
                                &f.rel,
                                c.line,
                            );
                        }
                        if let Some(g) = guard {
                            held.retain(|h| h.guard != g);
                            held.push(Held {
                                guard: g,
                                lock,
                                line: c.line,
                            });
                        }
                    }
                    Classified::Block {
                        kind,
                        what,
                        wait_guard,
                    } => {
                        if file.lexed.is_test_line(c.line) {
                            continue;
                        }
                        // The waited guard is released for the wait.
                        let others: Vec<&Held> = held
                            .iter()
                            .filter(|h| wait_guard.as_deref() != Some(h.guard.as_str()))
                            .collect();
                        if let Some(h) = others.first() {
                            out.site(
                                file,
                                c.line,
                                lint,
                                &["hold-and-call"],
                                format!(
                                    "`{what}` ({}) while holding `{}` (guard \
                                     `{}` acquired at line {}): blocking under \
                                     a lock stalls every other path to it; \
                                     drop the guard first, or waive with \
                                     `// lint: hold-and-call -- <why this is safe>`",
                                    kind.label(),
                                    h.lock,
                                    h.guard,
                                    h.line
                                ),
                            );
                        }
                    }
                    Classified::Calls(targets) => {
                        if file.lexed.is_test_line(c.line) {
                            continue;
                        }
                        // A method on the guarded data itself is not an
                        // escape from the critical section.
                        if let Some(root) = c.receiver.first() {
                            if held.iter().any(|h| &h.guard == root) {
                                continue;
                            }
                        }
                        // Observed-order edges through uniquely
                        // resolved callees only.
                        if let [t] = targets.as_slice() {
                            for lock in &locks_acq[*t] {
                                for h in &held {
                                    record_edge(
                                        &mut edges,
                                        &mut edge_sites,
                                        &h.lock,
                                        lock,
                                        &f.rel,
                                        c.line,
                                    );
                                }
                            }
                            // Guard-returning callee: the caller now
                            // holds what the callee acquired.
                            let callee = &graph.fns[*t];
                            if callee.returns_guard {
                                if let (Some(b), Some(lock)) =
                                    (c.binding.clone(), locks_acq[*t].first())
                                {
                                    held.retain(|h| h.guard != b);
                                    held.push(Held {
                                        guard: b,
                                        lock: lock.clone(),
                                        line: c.line,
                                    });
                                    continue;
                                }
                            }
                        }
                        if held.is_empty() {
                            continue;
                        }
                        let reach = targets
                            .iter()
                            .find_map(|t| graph.block_reach(*t, &mut block_memo));
                        if let Some(chain) = reach {
                            let h = &held[0];
                            out.site(
                                file,
                                c.line,
                                lint,
                                &["hold-and-call"],
                                format!(
                                    "call to `{}` may block ({chain}) while \
                                     holding `{}` (guard `{}` acquired at line \
                                     {}): drop the guard first, or waive with \
                                     `// lint: hold-and-call -- <why this is safe>`",
                                    c.name, h.lock, h.guard, h.line
                                ),
                            );
                        }
                    }
                    Classified::Opaque => {}
                },
            }
        }
    }

    if let Some(cycle) = find_cycle(&edges) {
        let on_cycle = |a: &str, b: &str| cycle.windows(2).any(|w| w[0] == a && w[1] == b);
        let site = edge_sites.iter().find(|(_, _, a, b)| on_cycle(a, b));
        let (file, line) = site
            .map(|(f, l, _, _)| (f.clone(), *l))
            .unwrap_or_else(|| ("<workspace>".to_string(), 0));
        out.finding(
            file,
            line,
            lint,
            format!(
                "observed lock acquisition order forms a cycle ({}) through \
                 the call graph of crate `{}`: two call paths disagree about \
                 ordering — a latent deadlock",
                cycle.join(" < "),
                graph.name
            ),
        );
    }
}

fn record_edge(
    edges: &mut BTreeMap<String, Vec<String>>,
    sites: &mut Vec<(String, usize, String, String)>,
    from: &str,
    to: &str,
    rel: &str,
    line: usize,
) {
    if from == to {
        return; // re-entrant same-lock is the poison lint's business
    }
    let tos = edges.entry(from.to_string()).or_default();
    if !tos.iter().any(|t| t == to) {
        tos.push(to.to_string());
    }
    sites.push((rel.to_string(), line, from.to_string(), to.to_string()));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run;

    fn findings_for(sources: &[(&str, &str)]) -> Vec<crate::Finding> {
        let ws = Workspace::from_sources(sources);
        run(&ws, &[Box::new(HoldAndCall)])
    }

    #[test]
    fn fires_on_direct_blocking_under_a_held_guard() {
        let bad = "\
struct S;
impl S {
    fn flush(&self) {
        let inner = self.state.lock().unwrap_or_else(|e| e.into_inner());
        std::fs::rename(a, b);
        drop(inner);
    }
}
";
        let f = findings_for(&[("crates/store/src/s.rs", bad)]);
        assert!(
            f.iter().any(|x| x.lint == "hold-and-call"
                && x.line == 5
                && x.message.contains("fs::rename")),
            "{f:?}"
        );
    }

    #[test]
    fn fires_on_transitive_blocking_through_a_call() {
        let bad = "\
struct S;
impl S {
    fn outer(&self) {
        let g = self.state.lock().unwrap_or_else(|e| e.into_inner());
        self.slow();
        drop(g);
    }
    fn slow(&self) {
        std::thread::sleep(d);
    }
}
";
        let f = findings_for(&[("crates/serve/src/s.rs", bad)]);
        assert!(
            f.iter()
                .any(|x| x.line == 5 && x.message.contains("slow") && x.message.contains("sleep")),
            "{f:?}"
        );
    }

    #[test]
    fn own_guard_condvar_wait_and_dropped_guards_pass() {
        let ok = "\
struct Q;
impl Q {
    fn pop(&self) -> u64 {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner = self.not_empty.wait(inner).unwrap_or_else(|e| e.into_inner());
        let v = inner.q.pop_front();
        drop(inner);
        self.after_unlock();
        v
    }
    fn after_unlock(&self) {
        std::thread::sleep(d);
    }
}
";
        assert_eq!(findings_for(&[("crates/serve/src/q.rs", ok)]), vec![]);
    }

    #[test]
    fn wait_flags_other_held_guards() {
        let bad = "\
struct Q;
impl Q {
    fn bad(&self) {
        let a = self.a.lock().unwrap_or_else(|e| e.into_inner());
        let mut b = self.b.lock().unwrap_or_else(|e| e.into_inner());
        b = self.cv.wait(b).unwrap_or_else(|e| e.into_inner());
        drop(b);
        drop(a);
    }
}
";
        let f = findings_for(&[("crates/serve/src/q.rs", bad)]);
        assert!(
            f.iter().any(|x| x.line == 6 && x.message.contains("Q.a")),
            "waiting on b releases b but still blocks while holding a: {f:?}"
        );
    }

    #[test]
    fn guard_returning_helper_counts_as_acquisition() {
        let bad = "\
struct C;
impl C {
    fn lock_recovered(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
    fn bad(&self) {
        let inner = self.lock_recovered();
        handle.join();
        drop(inner);
    }
}
";
        let f = findings_for(&[("crates/serve/src/c.rs", bad)]);
        assert!(
            f.iter().any(|x| x.line == 8
                && x.message.contains("thread join")
                && x.message.contains("C.inner")),
            "{f:?}"
        );
    }

    #[test]
    fn cross_file_lock_order_cycle_is_detected() {
        // The seeded two-file cycle: ab() takes A then (via a helper
        // in the *other* file) B; ba() takes B then (via a helper in
        // the first file) A. No single file shows both orders.
        let file_a = "\
struct S;
impl S {
    fn ab(&self) {
        let g = self.lock_a.lock().unwrap_or_else(|e| e.into_inner());
        self.then_b();
        drop(g);
    }
    fn take_a(&self) {
        let g = self.lock_a.lock().unwrap_or_else(|e| e.into_inner());
        drop(g);
    }
}
";
        let file_b = "\
impl S {
    fn ba(&self) {
        let g = self.lock_b.lock().unwrap_or_else(|e| e.into_inner());
        self.take_a();
        drop(g);
    }
    fn then_b(&self) {
        let g = self.lock_b.lock().unwrap_or_else(|e| e.into_inner());
        drop(g);
    }
}
";
        let f = findings_for(&[
            ("crates/serve/src/order_a.rs", file_a),
            ("crates/serve/src/order_b.rs", file_b),
        ]);
        assert!(
            f.iter()
                .any(|x| x.message.contains("cycle") && x.message.contains("S.lock_a")),
            "{f:?}"
        );
    }

    #[test]
    fn waiver_suppresses_and_is_recorded() {
        let waived = "\
struct W;
impl W {
    fn append(&self) {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        // lint: hold-and-call -- single-writer store: the lock exists to serialize appends
        std::fs::rename(a, b);
        drop(inner);
    }
}
";
        let ws = Workspace::from_sources(&[("crates/store/src/w.rs", waived)]);
        let out = crate::run_full(&ws, &[Box::new(HoldAndCall) as Box<dyn Lint>], false);
        assert_eq!(out.findings, vec![]);
        assert!(
            out.suppressions
                .iter()
                .any(|s| s.lint == "hold-and-call" && s.waiver_line == 5 && s.finding_line == 6),
            "{:?}",
            out.suppressions
        );
    }
}
