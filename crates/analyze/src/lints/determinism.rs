//! Determinism lint: decision and replay paths must not read wall
//! clocks or use iteration-order-unstable containers.
//!
//! The replay contract is that re-running a recorded trace produces a
//! decision log byte-identical to the live run. `SystemTime::now` and
//! `Instant::now` differ between runs; `HashMap`/`HashSet` iterate in
//! per-process-seed order. Any of them in a decision or replay path is
//! a latent replay divergence. Files covered: `core::pipeline`,
//! `serve::service`, `session::hibernate` (victim selection must
//! replay identically, so it runs on the sim clock), `store::replay`,
//! `store::compact` (a compacted store must replay byte-identically,
//! so record rewriting may not consult clocks or unordered
//! containers; its wall-clock throughput telemetry carries an
//! explicit waiver),
//! and the socket edge's frame path (`edge::conn`, `edge::reactor`) —
//! recorded socket sessions must replay byte-identically, so the
//! decode/submit path may not consult wall clocks or seed-ordered
//! containers either.
//!
//! Waiver tag: `determinism` — for sites where the value provably
//! never feeds a decision (e.g. wall clock stamped into latency
//! telemetry only).

use crate::lexer::find_token_lines;
use crate::{Lint, Outcome, Workspace};

/// Files whose contents are decision/replay paths.
const TARGET_FILES: &[&str] = &[
    "crates/core/src/pipeline.rs",
    "crates/serve/src/service.rs",
    "crates/session/src/hibernate.rs",
    "crates/store/src/replay.rs",
    "crates/store/src/compact.rs",
    "crates/edge/src/conn.rs",
    "crates/edge/src/reactor.rs",
];

/// Forbidden tokens and why each breaks replay.
const FORBIDDEN: &[(&str, &str)] = &[
    (
        "SystemTime::now",
        "wall clock diverges between live run and replay",
    ),
    (
        "Instant::now",
        "monotonic clock diverges between live run and replay",
    ),
    (
        "HashMap",
        "iteration order depends on the per-process hash seed",
    ),
    (
        "HashSet",
        "iteration order depends on the per-process hash seed",
    ),
];

/// The determinism lint.
pub struct Determinism;

impl Lint for Determinism {
    fn name(&self) -> &'static str {
        "determinism"
    }

    fn invariant(&self) -> &'static str {
        "decision/replay paths (core pipeline, serve service, session hibernate, store replay/compact, edge conn/reactor) never read wall clocks or iterate seed-ordered containers (SystemTime::now, Instant::now, HashMap, HashSet)"
    }

    fn check(&self, ws: &Workspace, out: &mut Outcome) {
        for file in &ws.files {
            if !TARGET_FILES.contains(&file.rel.as_str()) {
                continue;
            }
            for (token, why) in FORBIDDEN {
                for line in find_token_lines(&file.lexed, token) {
                    if file.lexed.is_test_line(line) {
                        continue;
                    }
                    out.site(
                        file,
                        line,
                        self.name(),
                        &["determinism"],
                        format!(
                            "`{token}` in a decision/replay path: {why}; use the \
                             sim clock / BTree containers, or waive with \
                             `// lint: determinism -- <why it never feeds a decision>`"
                        ),
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run, Finding};

    fn findings_for(src: &str) -> Vec<Finding> {
        let ws = Workspace::from_sources(&[("crates/core/src/pipeline.rs", src)]);
        run(&ws, &[Box::new(Determinism)])
    }

    #[test]
    fn fires_on_known_bad_fixture() {
        let bad = "\
use std::collections::HashMap;
use std::time::Instant;

fn decide() {
    let t = Instant::now();
    let m: HashMap<u32, u8> = HashMap::new();
    let _ = (t, m);
}
";
        let f = findings_for(bad);
        assert!(
            f.iter().any(|x| x.lint == "determinism" && x.line == 1),
            "HashMap import flagged: {f:?}"
        );
        assert!(f.iter().any(|x| x.line == 5), "Instant::now flagged");
        // Line 6 mentions HashMap twice but findings dedup to one per
        // (file, line, message).
        assert!(f.iter().any(|x| x.line == 6));
    }

    #[test]
    fn ignores_tests_comments_strings_and_waivers() {
        let ok = "\
// HashMap would be wrong here, hence BTreeMap.
use std::collections::BTreeMap;

fn decide() {
    let s = \"HashMap\";
    let _ = (s, BTreeMap::<u32, u8>::new());
    let t = std::time::Instant::now(); // lint: determinism -- latency telemetry only
    let _ = t;
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;
    #[test]
    fn t() {
        let _ = HashMap::<u32, u8>::new();
    }
}
";
        assert_eq!(findings_for(ok), vec![], "clean fixture must pass");
    }

    #[test]
    fn non_target_files_are_out_of_scope() {
        let ws = Workspace::from_sources(&[(
            "crates/telemetry/src/export.rs",
            "use std::collections::HashMap;",
        )]);
        assert_eq!(run(&ws, &[Box::new(Determinism)]), vec![]);
    }
}
