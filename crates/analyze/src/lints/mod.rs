//! The lint suite. Each module hosts one lint plus the fixture
//! self-tests proving it fires on known-bad snippets. The first six
//! are lexical (token scans over one file at a time); `deadlock`,
//! `blocking` and `swallow` are graph-aware — they reason over the
//! per-crate call graph built by [`crate::graph`].

pub mod blocking;
pub mod deadlock;
pub mod determinism;
pub mod format_const;
pub mod locks;
pub mod panic;
pub mod swallow;
pub mod telemetry;
pub mod unsafe_ban;
