//! The lint suite. Each module hosts one lint plus the fixture
//! self-tests proving it fires on known-bad snippets.

pub mod determinism;
pub mod format_const;
pub mod locks;
pub mod panic;
pub mod telemetry;
pub mod unsafe_ban;
