//! Format-constant-singleness lint: wire/segment format constants are
//! declared once and referenced by name, never re-typed as literals.
//!
//! A magic number or CRC polynomial typed twice can drift: the writer
//! stamps one value, the scanner checks another, and every segment
//! after the edit is unreadable. The lint collects `const` declarations
//! whose names look like format constants (contain `MAGIC` or
//! `VERSION`, end in `_LEN` or `_OVERHEAD`, or are named `POLY`) and:
//!
//! 1. flags any second declaration of the same name anywhere in the
//!    workspace (the value must have one home);
//! 2. for distinctive values (hex literals >= 0x100 — magic words and
//!    polynomials, not small sizes like `1` or `28` that legitimately
//!    appear as lengths and offsets), flags every other integer
//!    literal in non-test code with the same numeric value.
//!
//! Waiver tag: `format-const`.

use std::collections::BTreeMap;

use crate::{Finding, Lint, Outcome, Workspace};

/// The format-constant-singleness lint.
pub struct FormatConstSingleness;

/// A collected format-constant declaration.
#[derive(Clone, Debug)]
struct Decl {
    name: String,
    file: String,
    line: usize,
    /// Numeric value when the initializer is an integer literal.
    value: Option<u128>,
    /// Whether the initializer was written in hex (distinctive
    /// format words rather than incidental sizes).
    hex: bool,
}

impl Lint for FormatConstSingleness {
    fn name(&self) -> &'static str {
        "format-const"
    }

    fn invariant(&self) -> &'static str {
        "wire/segment format constants (MAGIC/VERSION/*_LEN/*_OVERHEAD/POLY) are declared once; distinctive values (hex >= 0x100) are never re-typed as literals elsewhere"
    }

    fn check(&self, ws: &Workspace, out: &mut Outcome) {
        let mut decls: Vec<Decl> = Vec::new();
        for file in &ws.files {
            for d in collect_decls(&file.lexed.code) {
                decls.push(Decl {
                    file: file.rel.clone(),
                    ..d
                });
            }
        }

        // 1. A format constant has exactly one declaration.
        let mut by_name: BTreeMap<&str, Vec<&Decl>> = BTreeMap::new();
        for d in &decls {
            by_name.entry(d.name.as_str()).or_default().push(d);
        }
        for (name, sites) in &by_name {
            if sites.len() > 1 {
                let home = &sites[0];
                for dup in &sites[1..] {
                    out.findings.push(Finding {
                        file: dup.file.clone(),
                        line: dup.line,
                        lint: self.name(),
                        message: format!(
                            "format constant `{name}` is also declared at \
                             {}:{}; it must have exactly one home, re-export \
                             and reference it instead",
                            home.file, home.line
                        ),
                    });
                }
            }
        }

        // 2. Distinctive values never re-typed as literals.
        for d in &decls {
            let Some(value) = d.value else { continue };
            if !d.hex || value < 0x100 {
                continue;
            }
            for file in &ws.files {
                for (line, lit_value) in integer_literals(&file.lexed.code) {
                    if lit_value != value {
                        continue;
                    }
                    if file.rel == d.file && line == d.line {
                        continue; // the declaration itself
                    }
                    if file.lexed.is_test_line(line) {
                        continue;
                    }
                    out.site(
                        file,
                        line,
                        self.name(),
                        &["format-const"],
                        format!(
                            "literal {value:#x} re-types format constant \
                             `{}` (declared at {}:{}); reference the constant \
                             so the value has one home",
                            d.name, d.file, d.line
                        ),
                    );
                }
            }
        }
    }
}

/// Whether a const name is a format constant by naming convention.
fn is_format_name(name: &str) -> bool {
    name.contains("MAGIC")
        || name.contains("VERSION")
        || name.ends_with("_LEN")
        || name.ends_with("_OVERHEAD")
        || name == "POLY"
}

/// Collects `const NAME: T = <literal>;` declarations with format
/// names from a code view. `file` is left empty for the caller.
fn collect_decls(code: &str) -> Vec<Decl> {
    let mut decls = Vec::new();
    for (line, l) in (1usize..).zip(code.lines()) {
        let trimmed = l.trim_start();
        let body = trimmed
            .strip_prefix("pub const ")
            .or_else(|| trimmed.strip_prefix("pub(crate) const "))
            .or_else(|| trimmed.strip_prefix("const "));
        if let Some(body) = body {
            let name: String = body
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect();
            if !name.is_empty() && is_format_name(&name) {
                let init = body.split('=').nth(1).unwrap_or("");
                let token: String = init
                    .trim()
                    .chars()
                    .take_while(|c| !c.is_whitespace() && *c != ';')
                    .collect();
                let (value, hex) = parse_int_literal(&token)
                    .map(|(v, h)| (Some(v), h))
                    .unwrap_or((None, false));
                decls.push(Decl {
                    name,
                    file: String::new(),
                    line,
                    value,
                    hex,
                });
            }
        }
    }
    decls
}

/// Parses one integer literal token (underscores and type suffixes
/// allowed): returns (value, written_in_hex).
fn parse_int_literal(token: &str) -> Option<(u128, bool)> {
    let t: String = token.chars().filter(|c| *c != '_').collect();
    let (digits, radix, hex) =
        if let Some(h) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
            (h, 16u32, true)
        } else if let Some(b) = t.strip_prefix("0b") {
            (b, 2, false)
        } else if let Some(o) = t.strip_prefix("0o") {
            (o, 8, false)
        } else {
            (t.as_str(), 10, false)
        };
    // Trim a type suffix (u8..u128, usize, i*). Hex digits are a
    // subset of [0-9a-f], so scanning for the first non-digit works.
    let end = digits
        .char_indices()
        .find(|(_, c)| !c.is_digit(radix))
        .map(|(i, _)| i)
        .unwrap_or(digits.len());
    let (num, suffix) = digits.split_at(end);
    if num.is_empty() {
        return None;
    }
    if !suffix.is_empty()
        && !matches!(
            suffix,
            "u8" | "u16"
                | "u32"
                | "u64"
                | "u128"
                | "usize"
                | "i8"
                | "i16"
                | "i32"
                | "i64"
                | "i128"
                | "isize"
        )
    {
        return None;
    }
    u128::from_str_radix(num, radix).ok().map(|v| (v, hex))
}

/// All integer literals in a code view, as (1-based line, value).
fn integer_literals(code: &str) -> Vec<(usize, u128)> {
    let mut out = Vec::new();
    let bytes = code.as_bytes();
    let mut line = 1usize;
    let mut i = 0usize;
    while i < bytes.len() {
        let b = bytes[i];
        if b == b'\n' {
            line += 1;
            i += 1;
            continue;
        }
        if b.is_ascii_digit() {
            // Skip literals glued to an identifier (e.g. `x2`).
            if i > 0 && (bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_') {
                i += 1;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                continue;
            }
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            // Not part of a float: `1.5` counts the `1` only if the
            // dot is a range (`..`); skip fractional parts.
            if bytes.get(i) == Some(&b'.') && bytes.get(i + 1) != Some(&b'.') {
                i += 1;
                while i < bytes.len() && bytes[i].is_ascii_alphanumeric() {
                    i += 1;
                }
                continue;
            }
            if let Some((v, _)) = parse_int_literal(&code[start..i]) {
                out.push((line, v));
            }
            continue;
        }
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run;

    #[test]
    fn fires_on_retyped_magic_fixture() {
        let decl = "pub const MAGIC: u16 = 0x4D53;\n";
        let reuse = "\
fn check(word: u16) -> bool {
    word == 0x4D53
}
fn tiny(len: usize) -> bool {
    len == 28
}
";
        let ws = Workspace::from_sources(&[
            ("crates/serve/src/wire.rs", decl),
            ("crates/serve/src/service.rs", reuse),
        ]);
        let f = run(&ws, &[Box::new(FormatConstSingleness)]);
        assert!(
            f.iter()
                .any(|x| x.file == "crates/serve/src/service.rs" && x.line == 2),
            "re-typed magic flagged: {f:?}"
        );
        assert!(
            !f.iter().any(|x| x.line == 5),
            "small decimal 28 is not distinctive: {f:?}"
        );
    }

    #[test]
    fn fires_on_duplicate_declaration_fixture() {
        let a = "pub const SEGMENT_MAGIC: u32 = 0x4753_534D;\n";
        let b = "const SEGMENT_MAGIC: u32 = 0x4753_534D;\n";
        let ws = Workspace::from_sources(&[
            ("crates/store/src/segment.rs", a),
            ("crates/store/src/replay.rs", b),
        ]);
        let f = run(&ws, &[Box::new(FormatConstSingleness)]);
        assert!(
            f.iter().any(|x| x.message.contains("also declared")),
            "{f:?}"
        );
    }

    #[test]
    fn references_tests_and_waivers_pass() {
        let decl = "pub const MAGIC: u16 = 0x4D53;\npub const VERSION: u8 = 1;\n";
        let usage = "\
use crate::wire::MAGIC;
fn stamp(buf: &mut Vec<u8>) {
    buf.extend_from_slice(&MAGIC.to_le_bytes());
    let waived = 0x4D53; // lint: format-const -- doc example
    let _ = waived;
}

#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        assert_eq!(super::super::wire::MAGIC, 0x4D53);
    }
}
";
        let ws = Workspace::from_sources(&[
            ("crates/serve/src/wire.rs", decl),
            ("crates/serve/src/service.rs", usage),
        ]);
        assert_eq!(run(&ws, &[Box::new(FormatConstSingleness)]), vec![]);
    }

    #[test]
    fn literal_parsing_handles_suffixes_and_underscores() {
        assert_eq!(parse_int_literal("0x4D53"), Some((0x4D53, true)));
        assert_eq!(parse_int_literal("0x4753_534D"), Some((0x4753_534D, true)));
        assert_eq!(
            parse_int_literal("0xEDB8_8320u32"),
            Some((0xEDB8_8320, true))
        );
        assert_eq!(parse_int_literal("28usize"), Some((28, false)));
        assert_eq!(parse_int_literal("1"), Some((1, false)));
        assert_eq!(parse_int_literal("abc"), None);
        // `1e9` is a float, not an int with suffix `e9`.
        assert_eq!(parse_int_literal("1e9"), None);
    }

    #[test]
    fn float_fractions_do_not_alias_magics() {
        let decl = "pub const MAGIC: u32 = 0x100;\n";
        let usage = "fn f() -> f64 { 0.256 + 1.0 }\n";
        let ws = Workspace::from_sources(&[
            ("crates/serve/src/wire.rs", decl),
            ("crates/serve/src/service.rs", usage),
        ]);
        assert_eq!(run(&ws, &[Box::new(FormatConstSingleness)]), vec![]);
    }
}
