//! Blocking-in-hot-path lint: the three latency-critical loops never
//! block unboundedly.
//!
//! The edge reactor sweep (`run_reactor`), the shard-worker classify
//! path (`run_worker`), and the recorder drain loop (`run_backend`)
//! are the paths a frame crosses between the wire and a decision.
//! Each must stay free of filesystem I/O, sleeps, and unbounded waits
//! — transitively, through everything they call in their crate.
//! *Bounded* waits (`recv_timeout`, `wait_timeout`, `park_timeout`)
//! are the design: they are how the loops idle without burning a core
//! while keeping a hard latency ceiling.
//!
//! The lint BFS-walks the per-crate call graph from each root and
//! reports every reachable `Io`/`Sleep`/`UnboundedWait` primitive at
//! the primitive's own line, with the call chain that reaches it. A
//! root file that exists but no longer declares its root function is
//! itself a finding — renaming `run_reactor` must not silently turn
//! the lint off.
//!
//! Waiver tag: `hot-path` — placed at the primitive site, for
//! blocking the design explicitly accepts (e.g. a shutdown-only join
//! that runs after the loop exits but lives in the same function).

use std::collections::BTreeMap;

use crate::graph::{build_graph, BlockKind, Classified, CrateGraph, Op};
use crate::{Lint, Outcome, Workspace};

/// (root file, root function) pairs anchoring the hot paths.
const ROOTS: &[(&str, &str)] = &[
    ("crates/edge/src/reactor.rs", "run_reactor"),
    ("crates/serve/src/service.rs", "run_worker"),
    ("crates/serve/src/recording.rs", "run_backend"),
];

/// The blocking-in-hot-path lint.
pub struct HotPath;

impl Lint for HotPath {
    fn name(&self) -> &'static str {
        "hot-path"
    }

    fn invariant(&self) -> &'static str {
        "run_reactor (edge), run_worker (serve), and run_backend (serve) reach no fs I/O, sleep, or unbounded wait through their call graphs; bounded waits only"
    }

    fn check(&self, ws: &Workspace, out: &mut Outcome) {
        let graphs = build_graph(ws);
        for (root_file, root_fn) in ROOTS {
            if ws.file(root_file).is_none() {
                continue; // fixture workspaces carry only their own root
            }
            let krate = crate::graph::crate_of(root_file).unwrap_or("");
            let Some(graph) = graphs.crates.get(krate) else {
                continue;
            };
            let roots: Vec<usize> = graph
                .fns
                .iter()
                .enumerate()
                .filter(|(_, f)| f.name == *root_fn && f.rel == *root_file)
                .map(|(i, _)| i)
                .collect();
            if roots.is_empty() {
                out.finding(
                    root_file.to_string(),
                    1,
                    self.name(),
                    format!(
                        "hot-path root `{root_fn}` not found in this file: the \
                         lint anchors on it — if the loop was renamed or moved, \
                         update the lint's root table"
                    ),
                );
                continue;
            }
            sweep(self.name(), graph, ws, &roots, root_fn, out);
        }
    }
}

/// BFS from the roots; every reachable blocking primitive that is not
/// a bounded wait is reported at the primitive's line.
fn sweep(
    lint: &'static str,
    graph: &CrateGraph,
    ws: &Workspace,
    roots: &[usize],
    root_fn: &str,
    out: &mut Outcome,
) {
    // how_reached[idx] = call chain from the root, for the message.
    let mut how: BTreeMap<usize, String> = BTreeMap::new();
    let mut queue: Vec<usize> = Vec::new();
    for &r in roots {
        how.insert(r, root_fn.to_string());
        queue.push(r);
    }
    let mut head = 0usize;
    while head < queue.len() {
        let idx = queue[head];
        head += 1;
        let chain = how[&idx].clone();
        let f = &graph.fns[idx];
        let Some(file) = ws.files.get(f.file) else {
            continue;
        };
        for op in &f.ops {
            let Op::Call(c) = op else { continue };
            if file.lexed.is_test_line(c.line) {
                continue;
            }
            match graph.classify(c, f) {
                Classified::Block { kind, what, .. } => {
                    if matches!(kind, BlockKind::BoundedWait) {
                        continue; // bounded idling is the design
                    }
                    out.site(
                        file,
                        c.line,
                        lint,
                        &["hot-path"],
                        format!(
                            "`{what}` ({}) is reachable from hot path \
                             `{chain}`: the loop must stay free of fs I/O, \
                             sleeps, and unbounded waits — use a bounded wait, \
                             move the work off the loop, or waive with \
                             `// lint: hot-path -- <why latency is safe here>`",
                            kind.label()
                        ),
                    );
                }
                Classified::Calls(targets) => {
                    for t in targets {
                        if let std::collections::btree_map::Entry::Vacant(e) = how.entry(t) {
                            e.insert(format!(
                                "{chain} -> {callee}",
                                callee = graph.fns[t].display()
                            ));
                            queue.push(t);
                        }
                    }
                }
                Classified::Lock { .. } | Classified::Opaque => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run;

    #[test]
    fn fires_on_transitive_fs_io_from_run_worker() {
        let bad = "\
struct W;
impl W {
    fn run_worker(&self) {
        loop {
            self.classify();
        }
    }
    fn classify(&self) {
        self.audit();
    }
    fn audit(&self) {
        std::fs::write(p, b);
    }
}
";
        let ws = Workspace::from_sources(&[("crates/serve/src/service.rs", bad)]);
        let f = run(&ws, &[Box::new(HotPath)]);
        assert!(
            f.iter().any(|x| {
                x.lint == "hot-path"
                    && x.line == 12
                    && x.message.contains("run_worker -> W::classify -> W::audit")
            }),
            "{f:?}"
        );
    }

    #[test]
    fn fires_on_sleep_and_unbounded_recv_in_run_reactor() {
        let bad = "\
fn run_reactor(rx: &Receiver<u64>) {
    loop {
        let v = rx.recv();
        std::thread::sleep(d);
        let _ = v;
    }
}
";
        let ws = Workspace::from_sources(&[("crates/edge/src/reactor.rs", bad)]);
        let f = run(&ws, &[Box::new(HotPath)]);
        assert!(
            f.iter()
                .any(|x| x.line == 3 && x.message.contains("unbounded wait")),
            "{f:?}"
        );
        assert!(
            f.iter().any(|x| x.line == 4 && x.message.contains("sleep")),
            "{f:?}"
        );
    }

    #[test]
    fn bounded_waits_pass() {
        let ok = "\
fn run_backend(rx: &Receiver<u64>) {
    loop {
        match rx.recv_timeout(d) {
            Ok(v) => handle(v),
            Err(_) => continue,
        }
    }
}
fn handle(v: u64) {
    let _ = v;
}
";
        let ws = Workspace::from_sources(&[("crates/serve/src/recording.rs", ok)]);
        assert_eq!(run(&ws, &[Box::new(HotPath)]), vec![]);
    }

    #[test]
    fn missing_root_fn_is_a_finding() {
        let renamed = "fn run_reactor_v2() {}\n";
        let ws = Workspace::from_sources(&[("crates/edge/src/reactor.rs", renamed)]);
        let f = run(&ws, &[Box::new(HotPath)]);
        assert!(
            f.iter()
                .any(|x| x.line == 1 && x.message.contains("run_reactor")),
            "{f:?}"
        );
    }

    #[test]
    fn cold_functions_in_the_same_file_are_not_swept() {
        let ok = "\
fn run_reactor() {
    tick();
}
fn tick() {}
fn shutdown_cold() {
    std::fs::remove_file(p);
}
";
        let ws = Workspace::from_sources(&[("crates/edge/src/reactor.rs", ok)]);
        assert_eq!(run(&ws, &[Box::new(HotPath)]), vec![]);
    }

    #[test]
    fn waiver_suppresses_at_the_primitive_site() {
        let waived = "\
fn run_backend(&self) {
    loop {
        if self.done() {
            break;
        }
    }
    // lint: hot-path -- shutdown-only join after the drain loop exits
    self.thread.join();
}
";
        let ws = Workspace::from_sources(&[("crates/serve/src/recording.rs", waived)]);
        let out = crate::run_full(&ws, &[Box::new(HotPath) as Box<dyn Lint>], false);
        assert_eq!(out.findings, vec![]);
        assert!(
            out.suppressions.iter().any(|s| s.lint == "hot-path"),
            "{:?}",
            out.suppressions
        );
    }
}
