//! Error-swallow lint: discarded `Result`s in the data-path crates
//! carry a written reason.
//!
//! `let _ = fallible();` and `fallible().ok();` erase an error without
//! a trace: a failed fsync, a disconnected channel, a dead socket —
//! all become silence. In the crates that move or persist frames
//! (serve, store, edge, session), every such discard in non-test code
//! must either be rewritten to propagate/count the error, or carry a
//! `// lint: error-swallow -- <reason>` waiver stating why ignoring it
//! is correct (e.g. "receiver gone means shutdown; nothing to tell").
//!
//! Lexical, not type-aware: `let _ = <expr>;` is flagged whether or
//! not the expression is a `Result` — discarding *any* value
//! namelessly deserves a stated reason in these crates — while
//! `.ok();` as a terminated statement is the `Result`-specific idiom.
//! `let _unused = ...` (named discard) is not flagged; naming the
//! binding is itself the annotation.

use crate::{Lint, Outcome, Workspace};

/// Crates whose errors must not vanish silently.
const SCOPE: &[&str] = &[
    "crates/serve/src/",
    "crates/store/src/",
    "crates/edge/src/",
    "crates/session/src/",
];

/// The error-swallow lint.
pub struct ErrorSwallow;

impl Lint for ErrorSwallow {
    fn name(&self) -> &'static str {
        "error-swallow"
    }

    fn invariant(&self) -> &'static str {
        "in serve/store/edge/session non-test code, `let _ =` and `.ok();` discards carry `// lint: error-swallow -- <reason>` or are rewritten to propagate/count the error"
    }

    fn check(&self, ws: &Workspace, out: &mut Outcome) {
        for file in &ws.files {
            if !SCOPE.iter().any(|p| file.rel.starts_with(p)) {
                continue;
            }
            for (line, l) in (1usize..).zip(file.lexed.code.lines()) {
                if file.lexed.is_test_line(line) {
                    continue;
                }
                if let Some(what) = swallow_on_line(l) {
                    out.site(
                        file,
                        line,
                        self.name(),
                        &["error-swallow"],
                        format!(
                            "{what} discards a result without a trace: \
                             propagate it, count it via telemetry, or state \
                             why silence is correct with \
                             `// lint: error-swallow -- <reason>`"
                        ),
                    );
                }
            }
        }
    }
}

/// Detects a discard on one code-view line: `let _ =` (word-bounded on
/// the `_`) or a statement-terminated `.ok();`.
fn swallow_on_line(l: &str) -> Option<&'static str> {
    if let Some(pos) = l.find("let _") {
        let bounded = pos == 0
            || !matches!(l.as_bytes()[pos - 1], b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_');
        let rest = if bounded {
            &l[pos + "let _".len()..]
        } else {
            ""
        };
        // `_` must be the whole pattern: next char is whitespace/`=`,
        // not an identifier char (`let _unused`) or `:` (typed holes
        // still discard, but keep parity with the named-discard rule).
        let mut chars = rest.chars();
        match chars.next() {
            Some(c) if c.is_alphanumeric() || c == '_' => {}
            _ => {
                if rest.trim_start().starts_with('=') || rest.starts_with(" =") {
                    return Some("`let _ = ...`");
                }
            }
        }
    }
    // `.ok();` ending a bare expression statement. A line with an `=`
    // is a binding or assignment — the Option is kept, not discarded
    // (and `let _ = x.ok();` is already the first rule's business).
    let t = l.trim_end();
    if t.ends_with(".ok();") && !l.contains('=') {
        return Some("`.ok();`");
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run;

    #[test]
    fn fires_on_both_discard_shapes_in_scope() {
        let bad = "\
fn close(&self) {
    let _ = self.thread.join();
    self.file.sync_all().ok();
}
";
        let ws = Workspace::from_sources(&[("crates/store/src/writer.rs", bad)]);
        let f = run(&ws, &[Box::new(ErrorSwallow)]);
        assert!(
            f.iter().any(|x| x.line == 2 && x.message.contains("let _")),
            "{f:?}"
        );
        assert!(
            f.iter().any(|x| x.line == 3 && x.message.contains(".ok()")),
            "{f:?}"
        );
    }

    #[test]
    fn out_of_scope_crates_named_discards_and_tests_pass() {
        let telemetry = "fn f() { let _ = emit(); }\n"; // telemetry not in scope
        let named = "\
fn g(&self) {
    let _guard = self.inner.lock().unwrap_or_else(|e| e.into_inner());
    let value = fallible().ok();
    let _ = value;
}

#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        let _ = super::g();
        fallible().ok();
    }
}
";
        let ws = Workspace::from_sources(&[
            ("crates/telemetry/src/export.rs", telemetry),
            ("crates/serve/src/service.rs", named),
        ]);
        let f = run(&ws, &[Box::new(ErrorSwallow)]);
        // Only the bare `let _ = value;` at line 4 fires: `_guard` is a
        // named discard, `.ok()` mid-expression (bound to a name) is a
        // conversion, and test code is exempt.
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 4);
    }

    #[test]
    fn waiver_with_reason_suppresses() {
        let waived = "\
fn drop_thread(&mut self) {
    // lint: error-swallow -- a panicked backend already logged; join error adds nothing
    let _ = self.thread.join();
    self.sock.shutdown(how).ok(); // lint: error-swallow -- peer may already be gone
}
";
        let ws = Workspace::from_sources(&[("crates/serve/src/recording.rs", waived)]);
        let out = crate::run_full(&ws, &[Box::new(ErrorSwallow) as Box<dyn Lint>], false);
        assert_eq!(out.findings, vec![]);
        assert_eq!(out.suppressions.len(), 2, "{:?}", out.suppressions);
    }

    #[test]
    fn comment_text_does_not_fire() {
        let ok = "\
fn f() {
    // a comment mentioning let _ = and .ok(); is fine
    real_work();
}
";
        let ws = Workspace::from_sources(&[("crates/edge/src/conn.rs", ok)]);
        assert_eq!(run(&ws, &[Box::new(ErrorSwallow)]), vec![]);
    }
}
