//! Lock-discipline lint: poison handling is explicit and lock order is
//! declared and acyclic.
//!
//! Two checks:
//!
//! 1. **Poison discipline.** Every non-test `.lock()` site either
//!    recovers poison in place (`into_inner` on the same or next line
//!    — the `unwrap_or_else(|e| e.into_inner())` idiom) or carries a
//!    `// lint: poison-loud -- <reason>` waiver stating that
//!    propagating the panic is the design (fail-fast frame paths).
//!    Silent `.lock().unwrap()` with neither is a finding.
//!
//! 2. **Lock order.** `// lock-order: A < B` comments declare that
//!    lock `A` is always taken before lock `B`. The declarations are
//!    collected workspace-wide and the resulting graph is checked for
//!    cycles; a cycle means two call paths disagree about ordering —
//!    a latent deadlock.

use std::collections::BTreeMap;

use crate::lexer::find_token_lines;
use crate::{Finding, Lint, Outcome, Workspace};

/// The lock-discipline lint.
pub struct LockDiscipline;

impl Lint for LockDiscipline {
    fn name(&self) -> &'static str {
        "lock-discipline"
    }

    fn invariant(&self) -> &'static str {
        "every Mutex::lock site recovers poison (into_inner) or carries `// lint: poison-loud`; declared `// lock-order: A < B` edges form no cycle"
    }

    fn check(&self, ws: &Workspace, out: &mut Outcome) {
        // 1. Poison discipline at each .lock() site.
        for file in &ws.files {
            let lexed = &file.lexed;
            let code_lines: Vec<&str> = lexed.code.lines().collect();
            for line in find_token_lines(lexed, ".lock()") {
                if lexed.is_test_line(line) {
                    continue;
                }
                let here = code_lines.get(line - 1).copied().unwrap_or("");
                let next = code_lines.get(line).copied().unwrap_or("");
                if here.contains("into_inner") || next.contains("into_inner") {
                    continue;
                }
                out.site(
                    file,
                    line,
                    self.name(),
                    &["poison-loud"],
                    "`.lock()` without poison recovery: recover with \
                     `.unwrap_or_else(|e| e.into_inner())`, or declare \
                     fail-fast intent with `// lint: poison-loud -- <reason>`",
                );
            }
        }

        // 2. Collect lock-order edges and check for cycles.
        let mut edges: BTreeMap<String, Vec<String>> = BTreeMap::new();
        let mut edge_sites: Vec<(String, usize, String, String)> = Vec::new();
        for file in &ws.files {
            for c in &file.lexed.comments {
                let Some(rest) = c.text.strip_prefix("lock-order:") else {
                    continue;
                };
                let spec = rest.split("--").next().unwrap_or("").trim();
                let parts: Vec<&str> = spec.split('<').map(str::trim).collect();
                if parts.len() < 2 || parts.iter().any(|p| p.is_empty()) {
                    out.findings.push(Finding {
                        file: file.rel.clone(),
                        line: c.line,
                        lint: self.name(),
                        message: format!(
                            "malformed lock-order declaration `{spec}`: expected \
                             `// lock-order: A < B [< C ...]`"
                        ),
                    });
                    continue;
                }
                for w in parts.windows(2) {
                    edges
                        .entry(w[0].to_string())
                        .or_default()
                        .push(w[1].to_string());
                    edge_sites.push((file.rel.clone(), c.line, w[0].to_string(), w[1].to_string()));
                }
            }
        }
        if let Some(cycle) = find_cycle(&edges) {
            // Anchor the finding at the first declaration that appears
            // in the cycle, so the report points at real source.
            let on_cycle = |a: &str, b: &str| cycle.windows(2).any(|w| w[0] == a && w[1] == b);
            let site = edge_sites
                .iter()
                .find(|(_, _, a, b)| on_cycle(a, b))
                .cloned();
            let (file, line) = site
                .map(|(f, l, _, _)| (f, l))
                .unwrap_or_else(|| ("<workspace>".to_string(), 0));
            out.findings.push(Finding {
                file,
                line,
                lint: self.name(),
                message: format!(
                    "lock-order declarations form a cycle ({}): two call paths \
                     disagree about acquisition order — a latent deadlock",
                    cycle.join(" < ")
                ),
            });
        }
    }
}

/// Finds a cycle in the directed graph, returned as a node path whose
/// first and last elements coincide. Deterministic: nodes and edges
/// are visited in sorted order. Shared with the graph-aware
/// `hold-and-call` lint, which runs it over *observed* acquisition
/// edges rather than declared ones.
pub(crate) fn find_cycle(edges: &BTreeMap<String, Vec<String>>) -> Option<Vec<String>> {
    #[derive(Clone, Copy, PartialEq)]
    enum State {
        Unvisited,
        InStack,
        Done,
    }
    let mut state: BTreeMap<&str, State> = BTreeMap::new();
    for (from, tos) in edges {
        state.entry(from).or_insert(State::Unvisited);
        for to in tos {
            state.entry(to).or_insert(State::Unvisited);
        }
    }
    let nodes: Vec<&str> = state.keys().copied().collect();

    fn dfs<'a>(
        node: &'a str,
        edges: &'a BTreeMap<String, Vec<String>>,
        state: &mut BTreeMap<&'a str, State>,
        stack: &mut Vec<&'a str>,
    ) -> Option<Vec<String>> {
        state.insert(node, State::InStack);
        stack.push(node);
        if let Some(tos) = edges.get(node) {
            let mut tos: Vec<&str> = tos.iter().map(String::as_str).collect();
            tos.sort();
            for to in tos {
                match state.get(to).copied().unwrap_or(State::Unvisited) {
                    State::InStack => {
                        let start = stack.iter().position(|&n| n == to).unwrap_or(0);
                        let mut cycle: Vec<String> =
                            stack[start..].iter().map(|s| s.to_string()).collect();
                        cycle.push(to.to_string());
                        return Some(cycle);
                    }
                    State::Unvisited => {
                        if let Some(c) = dfs(to, edges, state, stack) {
                            return Some(c);
                        }
                    }
                    State::Done => {}
                }
            }
        }
        stack.pop();
        state.insert(node, State::Done);
        None
    }

    let mut stack = Vec::new();
    for node in nodes {
        if state.get(node).copied() == Some(State::Unvisited) {
            if let Some(c) = dfs(node, edges, &mut state, &mut stack) {
                return Some(c);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run;

    #[test]
    fn fires_on_unrecovered_lock_fixture() {
        let bad = "\
fn stat(&self) -> u64 {
    let inner = self.inner.lock().unwrap();
    inner.count
}
";
        let ws = Workspace::from_sources(&[("crates/serve/src/queue.rs", bad)]);
        let f = run(&ws, &[Box::new(LockDiscipline)]);
        assert!(
            f.iter().any(|x| x.lint == "lock-discipline" && x.line == 2),
            "{f:?}"
        );
    }

    #[test]
    fn recovery_waiver_and_tests_all_pass() {
        let ok = "\
fn read(&self) -> u64 {
    let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
    inner.count
}

fn read_wrapped(&self) -> u64 {
    let inner = self.inner.lock()
        .unwrap_or_else(|e| e.into_inner());
    inner.count
}

fn push(&self) {
    // lint: poison-loud -- frame path propagates poison by design
    let inner = self.inner.lock().expect(\"queue poisoned\");
    drop(inner);
}

#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        let m = std::sync::Mutex::new(0u32);
        let _ = m.lock().unwrap();
    }
}
";
        let ws = Workspace::from_sources(&[("crates/serve/src/queue.rs", ok)]);
        assert_eq!(run(&ws, &[Box::new(LockDiscipline)]), vec![]);
    }

    #[test]
    fn lock_order_cycle_is_a_finding() {
        let a = "\
// lock-order: queue < recorder
fn f() {}
";
        let b = "\
// lock-order: recorder < queue -- oops, disagrees
fn g() {}
";
        let ws = Workspace::from_sources(&[
            ("crates/serve/src/queue.rs", a),
            ("crates/serve/src/recording.rs", b),
        ]);
        let f = run(&ws, &[Box::new(LockDiscipline)]);
        assert!(
            f.iter().any(|x| x.message.contains("cycle")),
            "cycle detected: {f:?}"
        );
    }

    #[test]
    fn acyclic_chain_and_malformed_decl() {
        let ok = "\
// lock-order: a < b < c
// lock-order: a < c
fn f() {}
";
        let ws = Workspace::from_sources(&[("crates/serve/src/queue.rs", ok)]);
        assert_eq!(run(&ws, &[Box::new(LockDiscipline)]), vec![]);

        let bad = "// lock-order: just-one\nfn f() {}\n";
        let ws = Workspace::from_sources(&[("crates/serve/src/queue.rs", bad)]);
        let f = run(&ws, &[Box::new(LockDiscipline)]);
        assert!(f.iter().any(|x| x.message.contains("malformed")), "{f:?}");
    }
}
