//! `mobisense-analyze`: a workspace invariant analyzer.
//!
//! The store's headline guarantee — replay of a recorded trace is
//! byte-identical to the live decision log — and the serve layer's
//! no-deadlock / no-silent-loss guarantees rest on conventions that
//! the compiler cannot check: no wall clock in decision paths, no
//! iteration-order-dependent containers, consistent lock ordering,
//! every telemetry event round-tripping through JSONL, wire constants
//! declared exactly once, no blocking under a held lock or in a hot
//! loop, no silently discarded `Result`s. This crate checks them
//! mechanically.
//!
//! The analyzer is std-only and offline: a small hand-rolled lexer
//! ([`lexer`]) blanks comments and string literals and marks
//! `#[cfg(test)]` regions, an item parser ([`parse`]) recovers
//! functions and impl blocks, and a per-crate call graph ([`graph`])
//! lets the newer lints reason across function boundaries. Run it as:
//!
//! ```text
//! cargo run -p mobisense-analyze -- --deny-all
//! ```
//!
//! Findings can be waived at a specific site with a
//! `// lint: <tag> -- reason` comment on the same line or the line
//! above. Every waiver is accounted for: a lint that honors one
//! records a [`Suppression`], and the waiver-hygiene pass turns any
//! waiver that suppressed nothing into a finding of its own — waivers
//! cannot rot silently. See DESIGN.md §5.10 and §5.15 for each lint's
//! contract and the waiver lifecycle.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub mod cache;
pub mod graph;
pub mod lexer;
pub mod lints;
pub mod parse;
pub mod report;

pub use lexer::{lex, Lexed};
pub use parse::ParsedFile;

/// One lint violation at a specific source location.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Name of the lint that fired.
    pub lint: &'static str,
    /// What is wrong and how to fix or waive it.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.lint, self.message
        )
    }
}

/// A record that a specific waiver comment suppressed a would-be
/// finding. The waiver-hygiene pass cross-references these against
/// every `// lint:` comment in the workspace.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Suppression {
    /// Workspace-relative path of the waiver comment.
    pub file: String,
    /// 1-based line of the waiver comment itself.
    pub waiver_line: usize,
    /// 1-based line of the suppressed finding.
    pub finding_line: usize,
    /// The lint that honored the waiver.
    pub lint: &'static str,
    /// The accepted tag (e.g. `poison-loud`).
    pub tag: String,
}

/// The result of running lints: active findings plus the suppressions
/// that waivers earned.
#[derive(Clone, Debug, Default)]
pub struct Outcome {
    /// Violations, sorted by (file, line, lint, message) after a run.
    pub findings: Vec<Finding>,
    /// Waiver uses, recorded by each lint when it honors a waiver.
    pub suppressions: Vec<Suppression>,
}

impl Outcome {
    /// Records a finding.
    pub fn finding(
        &mut self,
        file: impl Into<String>,
        line: usize,
        lint: &'static str,
        message: impl Into<String>,
    ) {
        self.findings.push(Finding {
            file: file.into(),
            line,
            lint,
            message: message.into(),
        });
    }

    /// Records that the waiver at `waiver_line` suppressed a would-be
    /// finding at `finding_line`.
    pub fn suppress(
        &mut self,
        file: impl Into<String>,
        waiver_line: usize,
        finding_line: usize,
        lint: &'static str,
        tag: impl Into<String>,
    ) {
        self.suppressions.push(Suppression {
            file: file.into(),
            waiver_line,
            finding_line,
            lint,
            tag: tag.into(),
        });
    }

    /// Finding-or-suppression helper for the common site shape: when a
    /// waiver with one of `tags` covers `line`, record the suppression;
    /// otherwise record a finding with `message`.
    pub fn site(
        &mut self,
        file: &SourceFile,
        line: usize,
        lint: &'static str,
        tags: &[&str],
        message: impl Into<String>,
    ) {
        match file.lexed.waiver_match(line, tags) {
            Some((waiver_line, tag)) => {
                self.suppress(file.rel.clone(), waiver_line, line, lint, tag)
            }
            None => self.finding(file.rel.clone(), line, lint, message),
        }
    }
}

/// One lexed and parsed source file of the workspace.
#[derive(Clone, Debug)]
pub struct SourceFile {
    /// Workspace-relative path, `/`-separated (e.g.
    /// `crates/serve/src/wire.rs`).
    pub rel: String,
    /// The lexed views of the file.
    pub lexed: Lexed,
    /// The item tree (functions and their owners).
    pub parsed: ParsedFile,
}

/// All first-party sources of the workspace, lexed and parsed.
#[derive(Clone, Debug, Default)]
pub struct Workspace {
    /// Files in sorted `rel` order.
    pub files: Vec<SourceFile>,
}

impl Workspace {
    /// The file with exactly this workspace-relative path, if loaded.
    pub fn file(&self, rel: &str) -> Option<&SourceFile> {
        self.files.iter().find(|f| f.rel == rel)
    }

    /// Builds a workspace from in-memory sources — used by lint
    /// self-tests to check that each lint fires on known-bad fixtures.
    pub fn from_sources(sources: &[(&str, &str)]) -> Workspace {
        let mut files: Vec<SourceFile> = sources
            .iter()
            .map(|(rel, src)| {
                let lexed = lex(src);
                let parsed = parse::parse(&lexed.code);
                SourceFile {
                    rel: (*rel).to_string(),
                    lexed,
                    parsed,
                }
            })
            .collect();
        files.sort_by(|a, b| a.rel.cmp(&b.rel));
        Workspace { files }
    }
}

/// A single invariant check over the whole workspace.
pub trait Lint {
    /// Short kebab-case name, used in output and `--only`.
    fn name(&self) -> &'static str;
    /// One-line statement of the invariant the lint enforces.
    fn invariant(&self) -> &'static str;
    /// Appends findings and suppressions for `ws`.
    fn check(&self, ws: &Workspace, out: &mut Outcome);
}

/// Every waiver tag some lint accepts. The waiver-hygiene pass flags
/// tags outside this list as unknown.
pub const KNOWN_WAIVER_TAGS: &[&str] = &[
    "determinism",
    "panic",
    "checked-index",
    "poison-loud",
    "format-const",
    "hold-and-call",
    "hot-path",
    "error-swallow",
];

/// Lint name under which waiver-hygiene findings are reported.
pub const WAIVER_HYGIENE: &str = "waiver-hygiene";

/// Loads every first-party source file under `root`: `crates/*/src/**`
/// and `xtests/src/**`. Vendored code (`third_party/`), build output
/// (`target/`), committed lint fixtures (`crates/analyze/fixtures/`),
/// and integration-test / bench / example trees are out of scope — the
/// lints govern shipped library and binary code.
pub fn load_workspace(root: &Path) -> io::Result<Workspace> {
    let (ws, _) = cache::load_workspace_cached(root, None)?;
    Ok(ws)
}

/// Collects the `.rs` files in scope under `root` as sorted
/// `(workspace-relative path, absolute path)` pairs.
pub(crate) fn collect_sources(root: &Path) -> io::Result<Vec<(String, PathBuf)>> {
    let mut paths: Vec<PathBuf> = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for entry in fs::read_dir(&crates_dir)? {
            let entry = entry?;
            let src = entry.path().join("src");
            if src.is_dir() {
                collect_rs(&src, &mut paths)?;
            }
        }
    }
    let xtests_src = root.join("xtests").join("src");
    if xtests_src.is_dir() {
        collect_rs(&xtests_src, &mut paths)?;
    }
    paths.sort();
    Ok(paths
        .into_iter()
        .map(|path| {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy().into_owned())
                .collect::<Vec<_>>()
                .join("/");
            (rel, path)
        })
        .collect())
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// The full lint suite, in the order they are listed and run.
pub fn all_lints() -> Vec<Box<dyn Lint>> {
    vec![
        Box::new(lints::determinism::Determinism),
        Box::new(lints::panic::PanicDiscipline),
        Box::new(lints::locks::LockDiscipline),
        Box::new(lints::deadlock::HoldAndCall),
        Box::new(lints::blocking::HotPath),
        Box::new(lints::swallow::ErrorSwallow),
        Box::new(lints::telemetry::TelemetryExhaustive),
        Box::new(lints::format_const::FormatConstSingleness),
        Box::new(lints::unsafe_ban::UnsafeBan),
    ]
}

/// Runs `lints` over `ws`; findings come back sorted by file, line,
/// lint name. Waiver hygiene is **not** checked — use [`run_full`]
/// with the full suite for that (a subset run cannot tell a stale
/// waiver from one owned by a lint that did not run).
pub fn run(ws: &Workspace, lints: &[Box<dyn Lint>]) -> Vec<Finding> {
    run_full(ws, lints, false).findings
}

/// Runs `lints` over `ws`, returning findings and suppressions. With
/// `check_waivers` (correct only when `lints` is the full suite), every
/// `// lint:` waiver in non-test code that suppressed nothing — or
/// that names an unknown tag — becomes a `waiver-hygiene` finding.
pub fn run_full(ws: &Workspace, lints: &[Box<dyn Lint>], check_waivers: bool) -> Outcome {
    let mut out = Outcome::default();
    for lint in lints {
        lint.check(ws, &mut out);
    }
    if check_waivers {
        check_waiver_hygiene(ws, &mut out);
    }
    out.findings.sort();
    out.findings.dedup();
    out.suppressions.sort();
    out.suppressions.dedup();
    out
}

/// The waiver-hygiene pass: cross-references every `// lint:` comment
/// against the suppressions the lints recorded.
fn check_waiver_hygiene(ws: &Workspace, out: &mut Outcome) {
    let mut hygiene: Vec<Finding> = Vec::new();
    for file in &ws.files {
        for c in &file.lexed.comments {
            let Some(rest) = c.text.strip_prefix("lint:") else {
                continue;
            };
            // Waivers in test code are inert (lints skip test lines).
            let covered = if c.standalone { c.line + 1 } else { c.line };
            if file.lexed.is_test_line(c.line) || file.lexed.is_test_line(covered) {
                continue;
            }
            let spec = rest.split("--").next().unwrap_or("");
            for tag in spec.split(',').map(str::trim).filter(|t| !t.is_empty()) {
                if !KNOWN_WAIVER_TAGS.contains(&tag) {
                    hygiene.push(Finding {
                        file: file.rel.clone(),
                        line: c.line,
                        lint: WAIVER_HYGIENE,
                        message: format!(
                            "unknown waiver tag `{tag}`: no lint accepts it \
                             (known: {})",
                            KNOWN_WAIVER_TAGS.join(", ")
                        ),
                    });
                    continue;
                }
                let used = out
                    .suppressions
                    .iter()
                    .any(|s| s.file == file.rel && s.waiver_line == c.line && s.tag == tag);
                if !used {
                    hygiene.push(Finding {
                        file: file.rel.clone(),
                        line: c.line,
                        lint: WAIVER_HYGIENE,
                        message: format!(
                            "stale waiver `{tag}`: it no longer suppresses any \
                             finding — remove the comment (or fix the tag) so \
                             waivers keep meaning something"
                        ),
                    });
                }
            }
        }
    }
    out.findings.append(&mut hygiene);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn findings_sort_and_render_stably() {
        let a = Finding {
            file: "crates/a/src/lib.rs".into(),
            line: 3,
            lint: "determinism",
            message: "m".into(),
        };
        let b = Finding {
            file: "crates/a/src/lib.rs".into(),
            line: 10,
            lint: "determinism",
            message: "m".into(),
        };
        let mut v = vec![b.clone(), a.clone()];
        v.sort();
        assert_eq!(v, vec![a.clone(), b]);
        assert_eq!(a.to_string(), "crates/a/src/lib.rs:3: [determinism] m");
    }

    #[test]
    fn workspace_from_sources_sorts_resolves_and_parses() {
        let ws = Workspace::from_sources(&[
            ("crates/b/src/lib.rs", "fn b() {}"),
            ("crates/a/src/lib.rs", "fn a() {}"),
        ]);
        assert_eq!(ws.files[0].rel, "crates/a/src/lib.rs");
        assert!(ws.file("crates/b/src/lib.rs").is_some());
        assert!(ws.file("crates/c/src/lib.rs").is_none());
        assert_eq!(ws.files[0].parsed.fns.len(), 1);
        assert_eq!(ws.files[0].parsed.fns[0].name, "a");
    }

    #[test]
    fn all_lints_have_unique_names_and_invariants() {
        let lints = all_lints();
        assert!(lints.len() >= 9, "the suite ships at least nine lints");
        let mut names: Vec<&str> = lints.iter().map(|l| l.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), lints.len(), "duplicate lint name");
        for lint in &lints {
            assert!(!lint.invariant().is_empty());
        }
    }

    #[test]
    fn stale_and_unknown_waivers_become_findings() {
        let src = "\
fn live() {
    // lint: determinism -- nothing on the next line needs it
    let x = 1;
    let y = 2; // lint: no-such-tag -- typo
    let _ = (x, y); // lint: error-swallow -- tuple of locals, nothing lost
}
";
        let ws = Workspace::from_sources(&[("crates/serve/src/a.rs", src)]);
        let out = run_full(&ws, &all_lints(), true);
        assert!(
            out.findings
                .iter()
                .any(|f| f.lint == WAIVER_HYGIENE && f.line == 2 && f.message.contains("stale")),
            "{:?}",
            out.findings
        );
        assert!(
            out.findings
                .iter()
                .any(|f| f.lint == WAIVER_HYGIENE && f.line == 4 && f.message.contains("unknown")),
            "{:?}",
            out.findings
        );
        assert!(
            !out.findings.iter().any(|f| f.line == 5),
            "used error-swallow waiver is not stale: {:?}",
            out.findings
        );
        assert!(
            out.suppressions
                .iter()
                .any(|s| s.lint == "error-swallow" && s.waiver_line == 5),
            "{:?}",
            out.suppressions
        );
    }

    #[test]
    fn test_code_waivers_are_ignored_by_hygiene() {
        let src = "\
fn live() {}
#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        // lint: determinism -- test-only, inert
        let _ = std::time::Instant::now();
    }
}
";
        let ws = Workspace::from_sources(&[("crates/serve/src/a.rs", src)]);
        let out = run_full(&ws, &all_lints(), true);
        assert!(
            !out.findings.iter().any(|f| f.lint == WAIVER_HYGIENE),
            "{:?}",
            out.findings
        );
    }
}
