//! `mobisense-analyze`: a workspace invariant analyzer.
//!
//! The store's headline guarantee — replay of a recorded trace is
//! byte-identical to the live decision log — and the serve layer's
//! no-deadlock / no-silent-loss guarantees rest on conventions that
//! the compiler cannot check: no wall clock in decision paths, no
//! iteration-order-dependent containers, consistent lock ordering,
//! every telemetry event round-tripping through JSONL, wire constants
//! declared exactly once. This crate checks them mechanically.
//!
//! The analyzer is std-only and offline: a small hand-rolled lexer
//! ([`lexer`]) blanks comments and string literals and marks
//! `#[cfg(test)]` regions, and each lint ([`lints`]) scans the
//! resulting code view. Run it as:
//!
//! ```text
//! cargo run -p mobisense-analyze -- --deny-all
//! ```
//!
//! Findings can be waived at a specific site with a
//! `// lint: <tag> -- reason` comment on the same line or the line
//! above; see DESIGN.md §5.10 for each lint's contract and the waiver
//! tags it accepts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub mod lexer;
pub mod lints;

pub use lexer::{lex, Lexed};

/// One lint violation at a specific source location.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Name of the lint that fired.
    pub lint: &'static str,
    /// What is wrong and how to fix or waive it.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.lint, self.message
        )
    }
}

/// One lexed source file of the workspace.
#[derive(Clone, Debug)]
pub struct SourceFile {
    /// Workspace-relative path, `/`-separated (e.g.
    /// `crates/serve/src/wire.rs`).
    pub rel: String,
    /// The lexed views of the file.
    pub lexed: Lexed,
}

/// All first-party sources of the workspace, lexed.
#[derive(Clone, Debug, Default)]
pub struct Workspace {
    /// Files in sorted `rel` order.
    pub files: Vec<SourceFile>,
}

impl Workspace {
    /// The file with exactly this workspace-relative path, if loaded.
    pub fn file(&self, rel: &str) -> Option<&SourceFile> {
        self.files.iter().find(|f| f.rel == rel)
    }

    /// Builds a workspace from in-memory sources — used by lint
    /// self-tests to check that each lint fires on known-bad fixtures.
    pub fn from_sources(sources: &[(&str, &str)]) -> Workspace {
        let mut files: Vec<SourceFile> = sources
            .iter()
            .map(|(rel, src)| SourceFile {
                rel: (*rel).to_string(),
                lexed: lex(src),
            })
            .collect();
        files.sort_by(|a, b| a.rel.cmp(&b.rel));
        Workspace { files }
    }
}

/// A single invariant check over the whole workspace.
pub trait Lint {
    /// Short kebab-case name, used in output and `--only`.
    fn name(&self) -> &'static str;
    /// One-line statement of the invariant the lint enforces.
    fn invariant(&self) -> &'static str;
    /// Appends findings for every violation in `ws`.
    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>);
}

/// Loads every first-party source file under `root`: `crates/*/src/**`
/// and `xtests/src/**`. Vendored code (`third_party/`), build output
/// (`target/`), and integration-test / bench / example trees are out
/// of scope — the lints govern shipped library and binary code.
pub fn load_workspace(root: &Path) -> io::Result<Workspace> {
    let mut paths: Vec<PathBuf> = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for entry in fs::read_dir(&crates_dir)? {
            let entry = entry?;
            let src = entry.path().join("src");
            if src.is_dir() {
                collect_rs(&src, &mut paths)?;
            }
        }
    }
    let xtests_src = root.join("xtests").join("src");
    if xtests_src.is_dir() {
        collect_rs(&xtests_src, &mut paths)?;
    }
    paths.sort();

    let mut files = Vec::with_capacity(paths.len());
    for path in paths {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let source = fs::read_to_string(&path)?;
        files.push(SourceFile {
            rel,
            lexed: lex(&source),
        });
    }
    Ok(Workspace { files })
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// The full lint suite, in the order they are listed and run.
pub fn all_lints() -> Vec<Box<dyn Lint>> {
    vec![
        Box::new(lints::determinism::Determinism),
        Box::new(lints::panic::PanicDiscipline),
        Box::new(lints::locks::LockDiscipline),
        Box::new(lints::telemetry::TelemetryExhaustive),
        Box::new(lints::format_const::FormatConstSingleness),
        Box::new(lints::unsafe_ban::UnsafeBan),
    ]
}

/// Runs `lints` over `ws`; findings come back sorted by file, line,
/// lint name.
pub fn run(ws: &Workspace, lints: &[Box<dyn Lint>]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for lint in lints {
        lint.check(ws, &mut findings);
    }
    findings.sort();
    findings.dedup();
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn findings_sort_and_render_stably() {
        let a = Finding {
            file: "crates/a/src/lib.rs".into(),
            line: 3,
            lint: "determinism",
            message: "m".into(),
        };
        let b = Finding {
            file: "crates/a/src/lib.rs".into(),
            line: 10,
            lint: "determinism",
            message: "m".into(),
        };
        let mut v = vec![b.clone(), a.clone()];
        v.sort();
        assert_eq!(v, vec![a.clone(), b]);
        assert_eq!(a.to_string(), "crates/a/src/lib.rs:3: [determinism] m");
    }

    #[test]
    fn workspace_from_sources_sorts_and_resolves() {
        let ws = Workspace::from_sources(&[
            ("crates/b/src/lib.rs", "fn b() {}"),
            ("crates/a/src/lib.rs", "fn a() {}"),
        ]);
        assert_eq!(ws.files[0].rel, "crates/a/src/lib.rs");
        assert!(ws.file("crates/b/src/lib.rs").is_some());
        assert!(ws.file("crates/c/src/lib.rs").is_none());
    }

    #[test]
    fn all_lints_have_unique_names_and_invariants() {
        let lints = all_lints();
        assert!(lints.len() >= 6, "the suite ships at least six lints");
        let mut names: Vec<&str> = lints.iter().map(|l| l.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), lints.len(), "duplicate lint name");
        for lint in &lints {
            assert!(!lint.invariant().is_empty());
        }
    }
}
