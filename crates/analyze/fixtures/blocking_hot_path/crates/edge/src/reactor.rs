//! Known-bad fixture: the reactor sweep reaches a sleep directly and
//! filesystem I/O through a callee. The CI gate asserts
//! `--only hot-path --deny-all` exits 1 on this tree.

/// A reactor whose sweep dawdles: a direct `sleep` and, through
/// `audit_sweep`, an `fs::write` — both hot-path findings.
pub fn run_reactor(log: &std::path::Path) {
    loop {
        std::thread::sleep(std::time::Duration::from_millis(1));
        audit_sweep(log);
    }
}

/// Transitive offender: called from the sweep, writes to disk.
fn audit_sweep(log: &std::path::Path) {
    let _ignored = std::fs::write(log, b"tick");
}
