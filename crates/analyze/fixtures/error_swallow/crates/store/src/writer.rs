//! Known-bad fixture: both discard shapes, unwaived, in a store-crate
//! path. The CI gate asserts `--only error-swallow --deny-all` exits 1
//! on this tree.

pub struct Writer {
    file: std::fs::File,
}

impl Writer {
    /// Swallows a failed fsync (`.ok();`) and a join result
    /// (`let _ =`) — two error-swallow findings, no waivers.
    pub fn sloppy_close(&self, thread: std::thread::JoinHandle<()>) {
        self.file.sync_all().ok();
        let _ = thread.join();
    }
}
