//! Known-bad fixture: blocking under a held guard, and one half of a
//! cross-file lock-order cycle (`S.lock_a` before `S.lock_b` here;
//! the other file takes them in the opposite order). The CI gate
//! asserts `--only hold-and-call --deny-all` exits 1 on this tree.

pub struct S {
    lock_a: std::sync::Mutex<u64>,
    lock_b: std::sync::Mutex<u64>,
    state: std::sync::Mutex<Vec<u8>>,
}

impl S {
    /// Holds `state` across a filesystem rename: a hold-and-call
    /// finding at the `fs::rename` line.
    pub fn flush(&self, from: &std::path::Path, to: &std::path::Path) {
        let guard = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let _ignored = std::fs::rename(from, to);
        drop(guard);
    }

    /// Takes `lock_a`, then `lock_b` via the helper in `order_b.rs`.
    pub fn ab(&self) {
        let g = self.lock_a.lock().unwrap_or_else(|e| e.into_inner());
        self.then_b();
        drop(g);
    }

    /// Helper for `order_b.rs`: acquires `lock_a` alone.
    pub fn take_a(&self) -> u64 {
        let g = self.lock_a.lock().unwrap_or_else(|e| e.into_inner());
        *g
    }
}
