//! The other half of the seeded lock-order cycle: `S.lock_b` before
//! `S.lock_a`, disagreeing with `order_a.rs`. No single file shows
//! both orders — only the cross-function analysis sees the cycle.

use crate::order_a::S;

impl S {
    /// Takes `lock_b`, then `lock_a` via `order_a.rs` — the reverse
    /// of `ab()`.
    pub fn ba(&self) -> u64 {
        let g = self.lock_b.lock().unwrap_or_else(|e| e.into_inner());
        let v = self.take_a();
        drop(g);
        v
    }

    /// Helper for `order_a.rs`: acquires `lock_b` alone.
    pub fn then_b(&self) {
        let g = self.lock_b.lock().unwrap_or_else(|e| e.into_inner());
        drop(g);
    }
}
