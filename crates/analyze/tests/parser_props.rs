//! Property tests for the analyzer's front half: the lexer's code
//! view is **structure-preserving** and the item parser is **total**.
//! Arbitrary token soup — including unbalanced braces, truncated
//! strings, stray `fn` keywords and comment openers — must never
//! panic the parser, and every span it reports must index real,
//! in-bounds source.

use mobisense_analyze::{lex, parse};
use proptest::prelude::*;

/// Token soup skewed toward the constructs the parser cares about.
fn token_pool() -> Vec<&'static str> {
    vec![
        "fn",
        "impl",
        "trait",
        "mod",
        "struct",
        "for",
        "where",
        "pub",
        "self",
        "name",
        "Frame",
        "x",
        "y",
        "{",
        "}",
        "(",
        ")",
        "<",
        ">",
        "[",
        "]",
        ";",
        ",",
        ":",
        "::",
        "->",
        "=",
        ".",
        "&",
        "&mut",
        "'a",
        "'x'",
        "\"str\"",
        "\"unterminated",
        "r#\"raw\"#",
        "// comment",
        "/*",
        "*/",
        "#[test]",
        "#[cfg(test)]",
        "#![forbid(unsafe_code)]",
        "1",
        "0x4D53",
        "!",
        "?",
        "#",
    ]
}

/// Tokens safe inside a single function body: nothing that opens or
/// closes a brace, a string, or a comment.
fn body_pool() -> Vec<&'static str> {
    vec![
        "name", "x", "y", "self", "(", ")", "<", ">", "[", "]", ";", ",", "::", "->", "=", ".",
        "&", "1", "0x4D53", "?", "let", "if", "return",
    ]
}

fn render(tokens: &[&str], seps: &[bool]) -> String {
    let mut s = String::new();
    for (i, t) in tokens.iter().enumerate() {
        s.push_str(t);
        s.push(if seps.get(i).copied().unwrap_or(false) {
            '\n'
        } else {
            ' '
        });
    }
    s
}

proptest! {
    /// The parser is total: any token stream lexes and parses without
    /// panicking, and every reported span indexes in-bounds source on
    /// character boundaries.
    #[test]
    fn parser_never_panics_and_spans_are_in_bounds(
        tokens in prop::collection::vec(prop::sample::select(token_pool()), 0..120),
        seps in prop::collection::vec(0u8..2, 0..120),
    ) {
        let seps: Vec<bool> = seps.into_iter().map(|b| b == 1).collect();
        let src = render(&tokens, &seps);
        let lexed = lex(&src);
        // The code view is byte-length- and newline-preserving.
        prop_assert_eq!(lexed.code.len(), src.len());
        prop_assert_eq!(
            lexed.code.bytes().filter(|&b| b == b'\n').count(),
            src.bytes().filter(|&b| b == b'\n').count()
        );
        let parsed = parse::parse(&lexed.code);
        let n_lines = lexed.code.lines().count() + 1;
        for f in &parsed.fns {
            prop_assert!(f.line >= 1 && f.line <= n_lines, "fn line {} of {n_lines}", f.line);
            prop_assert!(f.end_line >= f.line, "end {} < start {}", f.end_line, f.line);
            let (a, b) = f.sig;
            prop_assert!(a <= b && b <= lexed.code.len(), "sig {a}..{b}");
            prop_assert!(lexed.code.is_char_boundary(a) && lexed.code.is_char_boundary(b));
            if let Some((ba, bb)) = f.body {
                prop_assert!(ba < bb && bb <= lexed.code.len(), "body {ba}..{bb}");
                let body = &lexed.code[ba..bb];
                prop_assert!(body.starts_with('{'), "body starts {:?}", &body[..1]);
                // Balanced bodies close with their brace; an unbalanced
                // file (mid-edit) runs to EOF by contract.
                prop_assert!(
                    body.ends_with('}') || bb == lexed.code.len(),
                    "body closes or runs to EOF"
                );
            }
        }
    }

    /// Round trip on well-formed items: a probe function wrapped
    /// around brace-free soup is found by name, its signature span
    /// contains the name, and its body span covers balanced braces.
    #[test]
    fn probe_fn_round_trips_through_arbitrary_bodies(
        body_tokens in prop::collection::vec(prop::sample::select(body_pool()), 0..60),
        seps in prop::collection::vec(0u8..2, 0..60),
        owner in 0u8..2,
    ) {
        let seps: Vec<bool> = seps.into_iter().map(|b| b == 1).collect();
        let body = render(&body_tokens, &seps);
        let src = if owner == 1 {
            format!("impl Probe {{\n    fn probe(&self) -> u32 {{ {body} }}\n}}\n")
        } else {
            format!("fn probe() -> u32 {{ {body} }}\n")
        };
        let lexed = lex(&src);
        let parsed = parse::parse(&lexed.code);
        let f = parsed
            .fns
            .iter()
            .find(|f| f.name == "probe")
            .expect("probe fn is found");
        if owner == 1 {
            prop_assert_eq!(f.owner.as_deref(), Some("Probe"));
        } else {
            prop_assert!(f.owner.is_none());
        }
        let sig = &lexed.code[f.sig.0..f.sig.1];
        prop_assert!(sig.contains("probe"), "sig {sig:?}");
        let (ba, bb) = f.body.expect("probe has a body");
        let span = &lexed.code[ba..bb];
        let opens = span.matches('{').count();
        let closes = span.matches('}').count();
        prop_assert_eq!(opens, closes);
        prop_assert!(
            span.starts_with('{') && span.ends_with('}'),
            "body span is brace-delimited"
        );
        prop_assert_eq!(f.end_line, lexed.line_of(bb - 1));
    }
}
