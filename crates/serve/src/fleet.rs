//! Synthetic client fleets: thousands of encoded observation streams
//! generated from `mobisense-core` ground-truth scenarios.
//!
//! Stream generation is the expensive part of a serving experiment (it
//! runs the full ray channel per client per frame), so the fleet is
//! **pre-encoded**: each client's whole lifetime becomes one contiguous
//! byte buffer of wire frames, generated once — in parallel across
//! generator threads — and replayed by the service as fast as the
//! shards can drain it. Every per-client property (scenario kind, world
//! seed) derives from the client id alone, so the same `FleetConfig`
//! always yields byte-identical streams regardless of generator thread
//! count or shard count.

use mobisense_core::scenario::{Scenario, ScenarioKind};
use mobisense_mobility::movers::EnvIntensity;
use mobisense_util::units::{Nanos, MILLISECOND, SECOND};

use crate::wire::ObsFrame;

// The client hash and shard mapping moved to [`crate::routing`] (one
// shared copy for fleet, service and the socket edge); re-exported here
// because fleet generation is where most callers historically found
// them.
pub use crate::routing::{mix64, shard_of};

/// Parameters of a synthetic fleet.
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// Number of clients (ids `0..n_clients`).
    pub n_clients: u32,
    /// Simulated lifetime of every client.
    pub duration: Nanos,
    /// Frame cadence (one wire frame per step per client).
    pub step: Nanos,
    /// Base seed; per-client world seeds derive from it and the id.
    pub base_seed: u64,
    /// Weighted scenario mix the clients are drawn from.
    pub mix: Vec<(ScenarioKind, u32)>,
    /// Generator threads (`0` = one per available core).
    pub gen_threads: usize,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            n_clients: 64,
            duration: 10 * SECOND,
            step: 20 * MILLISECOND,
            base_seed: 1,
            mix: default_mix(),
            gen_threads: 0,
        }
    }
}

/// A plausible building population: mostly parked devices, a few
/// handled, a few walking (weights sum to 16).
pub fn default_mix() -> Vec<(ScenarioKind, u32)> {
    vec![
        (ScenarioKind::Static, 5),
        (ScenarioKind::Environmental(EnvIntensity::Weak), 3),
        (ScenarioKind::Environmental(EnvIntensity::Strong), 2),
        (ScenarioKind::Micro, 3),
        (ScenarioKind::MacroAway, 1),
        (ScenarioKind::MacroTowards, 1),
        (ScenarioKind::MacroRandom, 1),
    ]
}

impl FleetConfig {
    /// The deterministic scenario kind for one client id.
    pub fn kind_for(&self, client_id: u32) -> ScenarioKind {
        assert!(!self.mix.is_empty(), "fleet mix must not be empty");
        let total: u64 = self.mix.iter().map(|&(_, w)| w as u64).sum();
        assert!(total > 0, "fleet mix weights must not all be zero");
        let mut roll = mix64(client_id as u64 ^ 0x6d69_785f) % total;
        for &(kind, w) in &self.mix {
            if roll < w as u64 {
                return kind;
            }
            roll -= w as u64;
        }
        unreachable!("roll < total by construction")
    }

    /// The deterministic world seed for one client id.
    pub fn seed_for(&self, client_id: u32) -> u64 {
        self.base_seed ^ mix64(client_id as u64 ^ 0x636c_6965)
    }

    /// Frames each client emits over its lifetime.
    pub fn frames_per_client(&self) -> usize {
        (self.duration / self.step) as usize + 1
    }
}

/// One client's pre-encoded lifetime: `n_frames` equally sized wire
/// frames back to back.
#[derive(Clone, Debug)]
pub struct ClientStream {
    /// The client id carried in every frame.
    pub client_id: u32,
    /// The ground-truth scenario behind the stream, when the stream was
    /// generated synthetically; `None` for streams rebuilt from a
    /// recorded trace (the store only knows what was on the wire).
    pub kind: Option<ScenarioKind>,
    /// Number of encoded frames.
    pub n_frames: usize,
    /// Encoded size of each frame (fixed: the digest length is the
    /// channel's subcarrier count).
    pub frame_len: usize,
    /// The concatenated frame encodings.
    pub bytes: Vec<u8>,
}

impl ClientStream {
    /// Wraps already-encoded frames (e.g. payloads read back from the
    /// trace store) as a stream, without decoding them.
    ///
    /// Panics if `frame_len` is zero or does not divide the buffer —
    /// streams are fixed-stride by construction.
    pub fn from_encoded(client_id: u32, frame_len: usize, bytes: Vec<u8>) -> Self {
        assert!(frame_len > 0, "frame_len must be non-zero");
        assert!(
            bytes.len().is_multiple_of(frame_len),
            "stream of {} bytes is not a multiple of frame_len {frame_len}",
            bytes.len()
        );
        ClientStream {
            client_id,
            kind: None,
            n_frames: bytes.len() / frame_len,
            frame_len,
            bytes,
        }
    }

    /// Encodes a sequence of frames into a stream. All frames must
    /// belong to `client_id` and share one digest length.
    pub fn from_frames<'a>(client_id: u32, frames: impl IntoIterator<Item = &'a ObsFrame>) -> Self {
        let mut bytes = Vec::new();
        let mut frame_len = 0usize;
        let mut n_frames = 0usize;
        for f in frames {
            assert_eq!(f.client_id, client_id, "frame from a different client");
            if n_frames == 0 {
                frame_len = f.encoded_len();
            } else {
                assert_eq!(f.encoded_len(), frame_len, "mixed digest lengths");
            }
            f.encode_into(&mut bytes);
            n_frames += 1;
        }
        assert!(n_frames > 0, "a stream needs at least one frame");
        ClientStream {
            client_id,
            kind: None,
            n_frames,
            frame_len,
            bytes,
        }
    }

    /// The `i`-th encoded frame.
    pub fn frame(&self, i: usize) -> &[u8] {
        let o = i * self.frame_len;
        &self.bytes[o..o + self.frame_len]
    }

    /// The `i`-th frame, decoded. Panics on out-of-range `i`; stream
    /// bytes are well-formed by construction.
    pub fn obs(&self, i: usize) -> ObsFrame {
        ObsFrame::decode(self.frame(i))
            .expect("fleet frames well-formed")
            .0
    }

    /// The encoded frames, in sequence order, zero-copy.
    pub fn encoded_frames(&self) -> impl Iterator<Item = &[u8]> {
        self.bytes.chunks_exact(self.frame_len)
    }

    /// The decoded frames, in sequence order.
    pub fn frames(&self) -> impl Iterator<Item = ObsFrame> + '_ {
        (0..self.n_frames).map(|i| self.obs(i))
    }
}

/// A generated fleet: one encoded stream per client, in client-id order.
#[derive(Clone, Debug)]
pub struct EncodedFleet {
    /// The config the fleet was generated from.
    pub cfg: FleetConfig,
    /// Per-client streams, index = client id.
    pub streams: Vec<ClientStream>,
}

impl EncodedFleet {
    /// Generates every client stream, fanning the (embarrassingly
    /// parallel) per-client world simulation across
    /// [`FleetConfig::gen_threads`] threads. The output is
    /// byte-identical for any thread count.
    pub fn generate(cfg: &FleetConfig) -> Self {
        let threads = if cfg.gen_threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            cfg.gen_threads
        };
        let ids: Vec<u32> = (0..cfg.n_clients).collect();
        let chunk = ids.len().div_ceil(threads.max(1)).max(1);
        let mut streams: Vec<ClientStream> = Vec::with_capacity(ids.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = ids
                .chunks(chunk)
                .map(|chunk_ids| {
                    scope.spawn(move || {
                        chunk_ids
                            .iter()
                            .map(|&id| generate_stream(cfg, id))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for h in handles {
                streams.extend(h.join().expect("fleet generator panicked"));
            }
        });
        EncodedFleet {
            cfg: cfg.clone(),
            streams,
        }
    }

    /// Total frames across all streams.
    pub fn total_frames(&self) -> u64 {
        self.streams.iter().map(|s| s.n_frames as u64).sum()
    }

    /// Total encoded bytes across all streams.
    pub fn total_bytes(&self) -> usize {
        self.streams.iter().map(|s| s.bytes.len()).sum()
    }

    /// Every frame of every client, decoded lazily, client-major (all
    /// of client 0, then client 1, ...).
    pub fn frames(&self) -> impl Iterator<Item = ObsFrame> + '_ {
        self.streams.iter().flat_map(|s| s.frames())
    }

    /// Every encoded frame, zero-copy, **time-major** (frame `i` of
    /// every client before frame `i + 1` of any) — the order an ingest
    /// tap would see them and the order the trace store records them,
    /// so recording never decodes or re-encodes a frame.
    pub fn encoded_frames_time_major(&self) -> impl Iterator<Item = &[u8]> {
        let max_frames = self.streams.iter().map(|s| s.n_frames).max().unwrap_or(0);
        (0..max_frames).flat_map(move |i| {
            self.streams
                .iter()
                .filter(move |s| i < s.n_frames)
                .map(move |s| s.frame(i))
        })
    }
}

fn generate_stream(cfg: &FleetConfig, client_id: u32) -> ClientStream {
    let kind = cfg.kind_for(client_id);
    let mut scenario = Scenario::new(kind, cfg.seed_for(client_id));
    let n_frames = cfg.frames_per_client();
    let mut bytes = Vec::new();
    let mut frame_len = 0;
    for seq in 0..n_frames {
        let at = seq as Nanos * cfg.step;
        let obs = scenario.observe(at);
        let frame = ObsFrame::from_csi(client_id, seq as u32, at, obs.distance_m, &obs.csi);
        if seq == 0 {
            frame_len = frame.encoded_len();
            bytes.reserve_exact(frame_len * n_frames);
        }
        frame.encode_into(&mut bytes);
    }
    ClientStream {
        client_id,
        kind: Some(kind),
        n_frames,
        frame_len,
        bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::decode_stream;

    fn tiny() -> FleetConfig {
        FleetConfig {
            n_clients: 4,
            duration: SECOND,
            step: 100 * MILLISECOND,
            base_seed: 7,
            gen_threads: 1,
            ..FleetConfig::default()
        }
    }

    #[test]
    fn streams_decode_and_index_cleanly() {
        let fleet = EncodedFleet::generate(&tiny());
        assert_eq!(fleet.streams.len(), 4);
        for (id, s) in fleet.streams.iter().enumerate() {
            assert_eq!(s.client_id, id as u32);
            assert_eq!(s.n_frames, 11);
            assert_eq!(s.bytes.len(), s.n_frames * s.frame_len);
            let frames = decode_stream(&s.bytes).expect("well-formed stream");
            for (seq, f) in frames.iter().enumerate() {
                assert_eq!(f.client_id, id as u32);
                assert_eq!(f.seq, seq as u32);
                assert_eq!(f.at, seq as Nanos * 100 * MILLISECOND);
                // Frame indexing agrees with sequential decoding.
                let (indexed, _) = ObsFrame::decode(s.frame(seq)).expect("frame");
                assert_eq!(&indexed, f);
            }
        }
    }

    #[test]
    fn stream_iterators_agree_with_indexing() {
        let fleet = EncodedFleet::generate(&tiny());
        let s = &fleet.streams[2];
        assert!(s.kind.is_some(), "generated streams carry ground truth");
        let encoded: Vec<&[u8]> = s.encoded_frames().collect();
        assert_eq!(encoded.len(), s.n_frames);
        for (i, bytes) in encoded.iter().enumerate() {
            assert_eq!(*bytes, s.frame(i));
        }
        let decoded: Vec<ObsFrame> = s.frames().collect();
        assert_eq!(decoded, decode_stream(&s.bytes).expect("stream decodes"));
        assert_eq!(decoded[3], s.obs(3));

        // Fleet-level client-major iteration covers every frame once.
        assert_eq!(fleet.frames().count() as u64, fleet.total_frames());

        // Time-major order: capture times never decrease.
        let ats: Vec<Nanos> = fleet
            .encoded_frames_time_major()
            .map(|b| ObsFrame::peek_meta(b).expect("well-formed").at)
            .collect();
        assert_eq!(ats.len() as u64, fleet.total_frames());
        assert!(ats.windows(2).all(|w| w[0] <= w[1]), "time-major order");
    }

    #[test]
    fn rebuilt_streams_round_trip() {
        let fleet = EncodedFleet::generate(&tiny());
        let s = &fleet.streams[1];

        // From raw encoded bytes: byte-identical, no ground truth.
        let raw = ClientStream::from_encoded(s.client_id, s.frame_len, s.bytes.clone());
        assert_eq!(raw.n_frames, s.n_frames);
        assert_eq!(raw.bytes, s.bytes);
        assert_eq!(raw.kind, None);

        // From decoded frames: re-encoding is exact.
        let frames: Vec<ObsFrame> = s.frames().collect();
        let rebuilt = ClientStream::from_frames(s.client_id, &frames);
        assert_eq!(rebuilt.bytes, s.bytes);
        assert_eq!(rebuilt.frame_len, s.frame_len);
    }

    #[test]
    #[should_panic(expected = "multiple of frame_len")]
    fn from_encoded_rejects_ragged_buffers() {
        ClientStream::from_encoded(1, 44, vec![0u8; 45]);
    }

    #[test]
    fn generation_is_thread_count_invariant() {
        let one = EncodedFleet::generate(&FleetConfig {
            gen_threads: 1,
            ..tiny()
        });
        let four = EncodedFleet::generate(&FleetConfig {
            gen_threads: 4,
            ..tiny()
        });
        for (a, b) in one.streams.iter().zip(&four.streams) {
            assert_eq!(a.client_id, b.client_id);
            assert_eq!(a.bytes, b.bytes);
        }
    }

    #[test]
    fn client_assignment_ignores_fleet_size() {
        // Growing the fleet must not reshuffle existing clients'
        // scenarios or seeds (ids are stable identities).
        let small = tiny();
        let big = FleetConfig {
            n_clients: 64,
            ..tiny()
        };
        for id in 0..4 {
            assert_eq!(small.kind_for(id), big.kind_for(id));
            assert_eq!(small.seed_for(id), big.seed_for(id));
        }
    }

    #[test]
    fn mix_covers_all_weighted_kinds() {
        let cfg = FleetConfig {
            n_clients: 256,
            ..FleetConfig::default()
        };
        let mut seen = std::collections::BTreeSet::new();
        for id in 0..cfg.n_clients {
            seen.insert(cfg.kind_for(id).label());
        }
        for (kind, _) in default_mix() {
            assert!(seen.contains(kind.label()), "unseen kind {}", kind.label());
        }
    }

    #[test]
    fn shard_routing_is_stable_and_in_range() {
        for n in [1usize, 2, 3, 8] {
            let mut hit = vec![false; n];
            for id in 0..256u32 {
                let s = shard_of(id, n);
                assert!(s < n);
                assert_eq!(s, shard_of(id, n), "stable");
                hit[s] = true;
            }
            assert!(hit.iter().all(|&h| h), "all {n} shards used");
        }
    }
}
