//! mobisense-serve: the controller-side serving layer.
//!
//! Everything below this crate classifies **one** link; a deployment
//! classifies every associated client of every AP. This crate is that
//! scale-up, built entirely on `std`:
//!
//! * [`wire`] — a hand-rolled versioned binary codec for observation
//!   frames (CSI magnitude digest + ToF distance input), with a total
//!   round-trip parser;
//! * [`queue`] — bounded per-shard ingest queues with two explicit
//!   overflow policies: blocking backpressure or oldest-per-client load
//!   shedding;
//! * [`service`] — client-sharded workers (hash(client id) → shard,
//!   one `std::thread` each) running one
//!   [`PipelineSession`](mobisense_core::pipeline::PipelineSession) per
//!   client and emitting a Table-2 policy update on every post-warm-up
//!   mobility transition;
//! * [`fleet`] — deterministic synthetic fleets: thousands of encoded
//!   client streams generated from `mobisense-core` ground-truth
//!   scenarios;
//! * [`recording`] — the always-on flight recorder: a bounded channel
//!   plus a dedicated writer thread teeing every served frame (and the
//!   golden decision log) into a [`RecordBackend`] — in production the
//!   trace store — without disk latency on the frame path;
//! * [`ops`] — live operational monitoring: a background ticker
//!   snapshotting queue / recorder health as versioned JSONL
//!   ([`mobisense_telemetry::snapshot`]) and a stall watchdog flagging
//!   sources that stop making progress while work is pending;
//! * [`sessions`] — session-residency telemetry: per-shard gauge
//!   blocks (hot / hibernated / resident bytes) the workers publish
//!   and the ops monitor rides, backing `mobisense-session`'s
//!   hibernation of idle sessions and live shard rebalancing
//!   ([`ShardEngine::migrate`](service::ShardEngine::migrate)).
//!
//! The headline property is the **determinism contract**: under
//! blocking backpressure the merged decision log, sorted by
//! `(client_id, seq)`, is bit-identical whatever the shard count —
//! replaying an incident trace on a laptop with 2 shards reproduces
//! exactly what a 32-shard controller decided in production. See
//! `DESIGN.md` section 5.7 for how this coexists with the workspace's
//! single-threaded-determinism rule.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fleet;
pub mod ops;
pub mod queue;
pub mod recording;
pub mod routing;
pub mod service;
pub mod sessions;
pub mod wire;

pub use fleet::{ClientStream, EncodedFleet, FleetConfig};
pub use ops::{
    OpsMonitor, OpsOutcome, OpsSource, SnapshotMeta, SnapshotPolicy, StallDetector, StallFlag,
};
pub use queue::{MigrateParcel, OverflowPolicy, ShardQueue, Ticket, WorkItem};
pub use recording::{
    RecordBackend, RecordPolicy, Recorder, RecorderHandle, RecorderStats, RecordingConfig,
};
pub use routing::{mix64, shard_of};
pub use service::{
    decision_log_csv, emit_report_events, serve_fleet, serve_streams, serve_streams_recorded,
    BoxedPager, ServeConfig, ServeDecision, ServeReport, SessionsSummary, ShardEngine,
    ShardSummary,
};
pub use sessions::{SessionGauges, SessionOpsSource};
pub use wire::{decode_stream, decode_stream_lossy, FrameMeta, ObsFrame, WireError};
