//! The versioned binary wire codec for observation frames.
//!
//! An AP (or a packet tap feeding the controller) does not ship full
//! `(tx, rx, subcarrier)` CSI matrices upstream — the classifier only
//! ever consumes the per-subcarrier **magnitude digest** (the profile
//! behind the paper's Equation-(1) similarity) plus the ToF pipeline's
//! distance input. One frame on the wire is therefore:
//!
//! ```text
//! offset  size  field
//!      0     2  magic 0x4D53 ("MS"), little-endian
//!      2     1  codec version (currently 1)
//!      3     1  digest length  (subcarrier bin count, 1..=255)
//!      4     4  client id      (u32 LE)
//!      8     4  sequence       (u32 LE, per-client, starts at 0)
//!     12     8  capture time   (u64 LE, sim nanoseconds)
//!     20     8  ToF distance   (f64 LE bits, metres)
//!     28   4*n  digest         (f32 LE each)
//! ```
//!
//! Frames are fixed-size for a given digest length, so a stream of
//! frames can be indexed without a framing layer. Decoding is total:
//! truncated or corrupt input yields a [`WireError`], never a panic.

use mobisense_phy::csi::Csi;
use mobisense_util::units::Nanos;

/// Frame magic: `"MS"` little-endian.
pub const MAGIC: u16 = 0x4D53;
/// Current codec version.
pub const VERSION: u8 = 1;
/// Bytes before the digest payload.
pub const HEADER_LEN: usize = 28;

/// One observation frame as carried on the wire.
#[derive(Clone, Debug, PartialEq)]
pub struct ObsFrame {
    /// Stable client identifier (association id / station index).
    pub client_id: u32,
    /// Per-client sequence number, starting at 0.
    pub seq: u32,
    /// Capture timestamp (simulation clock, nanoseconds).
    pub at: Nanos,
    /// The ToF pipeline's distance input (metres).
    pub distance_m: f64,
    /// CSI magnitude digest: per-subcarrier magnitudes averaged over
    /// antenna pairs, quantised to `f32` for the wire.
    pub digest: Vec<f32>,
}

/// Why a buffer failed to decode as an [`ObsFrame`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// Fewer bytes than the frame (header plus digest) requires.
    Truncated {
        /// Bytes the frame needed.
        needed: usize,
        /// Bytes available.
        got: usize,
    },
    /// The first two bytes were not [`MAGIC`].
    BadMagic(u16),
    /// The version byte named a codec this parser does not speak.
    BadVersion(u8),
    /// The digest length byte was zero (a frame must carry a digest).
    EmptyDigest,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            WireError::Truncated { needed, got } => {
                write!(f, "truncated frame: needed {needed} bytes, got {got}")
            }
            WireError::BadMagic(m) => write!(f, "bad magic {m:#06x} (expected {MAGIC:#06x})"),
            WireError::BadVersion(v) => write!(f, "unsupported codec version {v}"),
            WireError::EmptyDigest => write!(f, "zero-length digest"),
        }
    }
}

impl std::error::Error for WireError {}

impl ObsFrame {
    /// Builds a frame from a full CSI matrix, reducing it to the wire
    /// digest.
    pub fn from_csi(client_id: u32, seq: u32, at: Nanos, distance_m: f64, csi: &Csi) -> Self {
        ObsFrame {
            client_id,
            seq,
            at,
            distance_m,
            digest: csi.magnitude_profile().iter().map(|&v| v as f32).collect(),
        }
    }

    /// The digest as the `f64` profile the classifier consumes.
    pub fn profile(&self) -> Vec<f64> {
        self.digest.iter().map(|&v| v as f64).collect()
    }

    /// Encoded size of this frame.
    pub fn encoded_len(&self) -> usize {
        HEADER_LEN + 4 * self.digest.len()
    }

    /// Appends the frame's encoding to `out`.
    ///
    /// Panics if the digest does not fit the one-byte length field
    /// (1..=255 entries); real digests are 52 bins.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        assert!(
            !self.digest.is_empty() && self.digest.len() <= u8::MAX as usize,
            "digest length {} outside 1..=255",
            self.digest.len()
        );
        out.reserve(self.encoded_len());
        out.extend_from_slice(&MAGIC.to_le_bytes());
        out.push(VERSION);
        out.push(self.digest.len() as u8);
        out.extend_from_slice(&self.client_id.to_le_bytes());
        out.extend_from_slice(&self.seq.to_le_bytes());
        out.extend_from_slice(&self.at.to_le_bytes());
        out.extend_from_slice(&self.distance_m.to_bits().to_le_bytes());
        for &v in &self.digest {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }

    /// The frame's encoding as a fresh buffer.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_len());
        self.encode_into(&mut out);
        out
    }

    /// Decodes one frame from the front of `buf`, returning it together
    /// with the number of bytes consumed.
    pub fn decode(buf: &[u8]) -> Result<(ObsFrame, usize), WireError> {
        if buf.len() < HEADER_LEN {
            return Err(WireError::Truncated {
                needed: HEADER_LEN,
                got: buf.len(),
            });
        }
        let magic = u16::from_le_bytes(le_bytes::<2>(buf, 0)?);
        if magic != MAGIC {
            return Err(WireError::BadMagic(magic));
        }
        let version = byte_at(buf, 2)?;
        if version != VERSION {
            return Err(WireError::BadVersion(version));
        }
        let digest_len = byte_at(buf, 3)? as usize;
        if digest_len == 0 {
            return Err(WireError::EmptyDigest);
        }
        let total = HEADER_LEN + 4 * digest_len;
        let payload = buf.get(HEADER_LEN..total).ok_or(WireError::Truncated {
            needed: total,
            got: buf.len(),
        })?;
        let mut digest = Vec::with_capacity(digest_len);
        for ch in payload.chunks_exact(4) {
            if let &[a, b, c, d] = ch {
                digest.push(f32::from_le_bytes([a, b, c, d]));
            }
        }
        Ok((
            ObsFrame {
                client_id: u32::from_le_bytes(le_bytes::<4>(buf, 4)?),
                seq: u32::from_le_bytes(le_bytes::<4>(buf, 8)?),
                at: u64::from_le_bytes(le_bytes::<8>(buf, 12)?),
                distance_m: f64::from_bits(u64::from_le_bytes(le_bytes::<8>(buf, 20)?)),
                digest,
            },
            total,
        ))
    }

    /// Reads the client id out of an encoded frame header without
    /// decoding the payload (ingest routing peeks this).
    pub fn peek_client_id(buf: &[u8]) -> Result<u32, WireError> {
        if buf.len() < HEADER_LEN {
            return Err(WireError::Truncated {
                needed: HEADER_LEN,
                got: buf.len(),
            });
        }
        let magic = u16::from_le_bytes(le_bytes::<2>(buf, 0)?);
        if magic != MAGIC {
            return Err(WireError::BadMagic(magic));
        }
        Ok(u32::from_le_bytes(le_bytes::<4>(buf, 4)?))
    }

    /// Validates the header of an encoded frame and returns its routing
    /// metadata without touching the digest payload. This is the cheap
    /// path for consumers that move encoded frames around verbatim —
    /// the trace store indexes segments with it, and stream rebuilding
    /// groups frames by client with it — so recording never pays a
    /// decode-re-encode round trip.
    pub fn peek_meta(buf: &[u8]) -> Result<FrameMeta, WireError> {
        if buf.len() < HEADER_LEN {
            return Err(WireError::Truncated {
                needed: HEADER_LEN,
                got: buf.len(),
            });
        }
        let magic = u16::from_le_bytes(le_bytes::<2>(buf, 0)?);
        if magic != MAGIC {
            return Err(WireError::BadMagic(magic));
        }
        let version = byte_at(buf, 2)?;
        if version != VERSION {
            return Err(WireError::BadVersion(version));
        }
        let digest_len = byte_at(buf, 3)? as usize;
        if digest_len == 0 {
            return Err(WireError::EmptyDigest);
        }
        Ok(FrameMeta {
            client_id: u32::from_le_bytes(le_bytes::<4>(buf, 4)?),
            seq: u32::from_le_bytes(le_bytes::<4>(buf, 8)?),
            at: u64::from_le_bytes(le_bytes::<8>(buf, 12)?),
            encoded_len: HEADER_LEN + 4 * digest_len,
        })
    }
}

/// Reads `N` little-endian bytes at `offset`, as a typed error instead
/// of a panicking slice-index on short input.
#[inline]
fn le_bytes<const N: usize>(buf: &[u8], offset: usize) -> Result<[u8; N], WireError> {
    buf.get(offset..offset + N)
        .and_then(|s| <[u8; N]>::try_from(s).ok())
        .ok_or(WireError::Truncated {
            needed: offset + N,
            got: buf.len(),
        })
}

/// Reads the byte at `offset`, as a typed error on short input.
#[inline]
fn byte_at(buf: &[u8], offset: usize) -> Result<u8, WireError> {
    buf.get(offset).copied().ok_or(WireError::Truncated {
        needed: offset + 1,
        got: buf.len(),
    })
}

/// Routing metadata peeked from an encoded frame's header (no payload
/// decode). `encoded_len` is the full frame size the header implies; a
/// holder of exactly one frame can check it against the buffer length.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FrameMeta {
    /// Stable client identifier.
    pub client_id: u32,
    /// Per-client sequence number.
    pub seq: u32,
    /// Capture timestamp (simulation clock, nanoseconds).
    pub at: Nanos,
    /// Total encoded frame length implied by the digest-length byte.
    pub encoded_len: usize,
}

/// Decodes a back-to-back stream of frames.
pub fn decode_stream(mut buf: &[u8]) -> Result<Vec<ObsFrame>, WireError> {
    let mut out = Vec::new();
    while !buf.is_empty() {
        let (frame, used) = ObsFrame::decode(buf)?;
        out.push(frame);
        buf = buf.get(used..).unwrap_or_default();
    }
    Ok(out)
}

/// Decodes as many whole frames as the buffer holds, stopping at the
/// first malformed or truncated one instead of discarding everything.
///
/// Returns the good prefix, the bytes it consumed, and the error that
/// stopped the scan (`None` when the buffer ended exactly on a frame
/// boundary). A crash-truncated trace tail salvages every frame that
/// made it to disk this way; [`decode_stream`] stays the strict
/// variant for input that must be whole.
pub fn decode_stream_lossy(mut buf: &[u8]) -> (Vec<ObsFrame>, usize, Option<WireError>) {
    let mut out = Vec::new();
    let mut consumed = 0usize;
    while !buf.is_empty() {
        match ObsFrame::decode(buf) {
            Ok((frame, used)) => {
                out.push(frame);
                consumed += used;
                buf = buf.get(used..).unwrap_or_default();
            }
            Err(e) => return (out, consumed, Some(e)),
        }
    }
    (out, consumed, None)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame() -> ObsFrame {
        ObsFrame {
            client_id: 0xDEAD_BEEF,
            seq: 42,
            at: 1_500_000_000,
            distance_m: 12.75,
            digest: (0..52).map(|i| i as f32 * 0.25).collect(),
        }
    }

    #[test]
    fn round_trip_is_exact() {
        let f = frame();
        let bytes = f.encode();
        assert_eq!(bytes.len(), f.encoded_len());
        let (back, used) = ObsFrame::decode(&bytes).expect("decodes");
        assert_eq!(used, bytes.len());
        assert_eq!(back, f);
    }

    #[test]
    fn stream_of_frames_round_trips() {
        let mut bytes = Vec::new();
        let frames: Vec<ObsFrame> = (0..5).map(|seq| ObsFrame { seq, ..frame() }).collect();
        for f in &frames {
            f.encode_into(&mut bytes);
        }
        assert_eq!(decode_stream(&bytes).expect("decodes"), frames);
    }

    #[test]
    fn truncation_is_reported_not_panicked() {
        let bytes = frame().encode();
        for cut in [0, 1, HEADER_LEN - 1, HEADER_LEN, bytes.len() - 1] {
            let err = ObsFrame::decode(&bytes[..cut]).expect_err("truncated");
            assert!(
                matches!(err, WireError::Truncated { .. }),
                "cut {cut}: {err}"
            );
        }
    }

    #[test]
    fn corrupt_header_rejected() {
        let mut bad_magic = frame().encode();
        bad_magic[0] ^= 0xFF;
        assert!(matches!(
            ObsFrame::decode(&bad_magic),
            Err(WireError::BadMagic(_))
        ));

        let mut bad_version = frame().encode();
        bad_version[2] = 99;
        assert_eq!(
            ObsFrame::decode(&bad_version).expect_err("version"),
            WireError::BadVersion(99)
        );

        let mut empty_digest = frame().encode();
        empty_digest[3] = 0;
        assert_eq!(
            ObsFrame::decode(&empty_digest).expect_err("digest"),
            WireError::EmptyDigest
        );
    }

    #[test]
    fn peek_client_id_matches_decode() {
        let f = frame();
        let bytes = f.encode();
        assert_eq!(ObsFrame::peek_client_id(&bytes), Ok(f.client_id));
        assert!(ObsFrame::peek_client_id(&bytes[..10]).is_err());
    }

    #[test]
    fn from_csi_carries_the_magnitude_profile() {
        let mut csi = Csi::zeros(2, 2, 4);
        for tx in 0..2 {
            for rx in 0..2 {
                for sc in 0..4 {
                    csi.set(tx, rx, sc, mobisense_util::C64::new(sc as f64 + 1.0, 0.0));
                }
            }
        }
        let f = ObsFrame::from_csi(7, 0, 0, 5.0, &csi);
        assert_eq!(f.digest, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(f.profile(), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn peek_meta_validates_and_matches_decode() {
        let f = frame();
        let bytes = f.encode();
        let meta = ObsFrame::peek_meta(&bytes).expect("well-formed header");
        assert_eq!(meta.client_id, f.client_id);
        assert_eq!(meta.seq, f.seq);
        assert_eq!(meta.at, f.at);
        assert_eq!(meta.encoded_len, bytes.len());

        assert!(matches!(
            ObsFrame::peek_meta(&bytes[..HEADER_LEN - 1]),
            Err(WireError::Truncated { .. })
        ));
        let mut bad = bytes.clone();
        bad[2] = 9;
        assert_eq!(ObsFrame::peek_meta(&bad), Err(WireError::BadVersion(9)));
        let mut empty = bytes;
        empty[3] = 0;
        assert_eq!(ObsFrame::peek_meta(&empty), Err(WireError::EmptyDigest));
    }

    #[test]
    fn lossy_decode_salvages_good_prefix() {
        let frames: Vec<ObsFrame> = (0..4).map(|seq| ObsFrame { seq, ..frame() }).collect();
        let mut bytes = Vec::new();
        for f in &frames {
            f.encode_into(&mut bytes);
        }
        let whole = bytes.len();

        // Clean buffer: everything decodes, no error, all bytes used.
        let (all, used, err) = decode_stream_lossy(&bytes);
        assert_eq!((all.as_slice(), used, err), (&frames[..], whole, None));

        // Truncated tail: the first three frames survive.
        let cut = whole - 5;
        let (good, used, err) = decode_stream_lossy(&bytes[..cut]);
        assert_eq!(good, frames[..3]);
        assert_eq!(used, 3 * frames[0].encoded_len());
        assert!(matches!(err, Some(WireError::Truncated { .. })));

        // Mid-stream corruption: frames before the bad magic survive.
        let mut corrupt = bytes.clone();
        corrupt[2 * frames[0].encoded_len()] ^= 0xFF;
        let (good, used, err) = decode_stream_lossy(&corrupt);
        assert_eq!(good, frames[..2]);
        assert_eq!(used, 2 * frames[0].encoded_len());
        assert!(matches!(err, Some(WireError::BadMagic(_))));

        // Strict decoding of the same corrupt buffer drops everything.
        assert!(decode_stream(&corrupt).is_err());
    }

    #[test]
    fn error_messages_are_informative() {
        assert!(WireError::BadMagic(7).to_string().contains("0x0007"));
        assert!(WireError::Truncated { needed: 28, got: 3 }
            .to_string()
            .contains("28"));
    }
}
