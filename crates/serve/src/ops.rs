//! Live ops monitoring of a serving run: a background ticker that
//! captures periodic [`Snapshot`]s of queue / recorder health and a
//! stall watchdog flagging sources that stop making progress.
//!
//! The monitor thread owns nothing on the frame path: each tick it
//! reads per-shard queue statistics (depth, the high-water mark since
//! the previous tick, cumulative pops and sheds) and, when a flight
//! recorder is attached, the recording channel's counters and backlog.
//! It serializes them as one `telemetry::snapshot` JSONL block and
//! feeds a [`StallDetector`]: a source whose progress counter is frozen
//! across `stall_intervals` consecutive ticks *while it has pending
//! work* is flagged once per stall episode (re-armed when progress
//! resumes), surfacing as an [`Event::Stall`] in the run's sink.
//!
//! [`Event::Stall`]: mobisense_telemetry::Event::Stall

use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use mobisense_telemetry::{Registry, Snapshot};

use crate::queue::ShardQueue;
use crate::recording::RecorderHandle;

/// When and how aggressively the ops monitor runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SnapshotPolicy {
    /// Time between snapshot ticks.
    pub interval: Duration,
    /// Consecutive no-progress intervals before a source is flagged
    /// stalled (the watchdog window).
    pub stall_intervals: u32,
}

impl Default for SnapshotPolicy {
    fn default() -> Self {
        SnapshotPolicy {
            interval: Duration::from_millis(100),
            stall_intervals: 2,
        }
    }
}

/// One stall the watchdog flagged.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StallFlag {
    /// The stalled source: `"shard-<n>"` or `"recorder"`.
    pub source: String,
    /// Consecutive no-progress intervals observed when flagged.
    pub intervals: u64,
    /// Items pending at the source when flagged.
    pub backlog: u64,
}

/// Header facts of one captured snapshot (the serialized text lives in
/// [`OpsOutcome::snapshots`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SnapshotMeta {
    /// Sequence number within the run (1-based).
    pub seq: u64,
    /// Metrics the snapshot carried.
    pub metrics: u64,
    /// Serialized JSONL size, bytes.
    pub bytes: u64,
}

/// Everything the monitor observed, returned at join time.
#[derive(Clone, Debug, Default)]
pub struct OpsOutcome {
    /// One serialized snapshot block per tick, in order.
    pub snapshots: Vec<String>,
    /// Header facts for each block in [`OpsOutcome::snapshots`].
    pub meta: Vec<SnapshotMeta>,
    /// Stalls flagged, in detection order.
    pub stalls: Vec<StallFlag>,
    /// Ticks the monitor ran (equals `snapshots.len()`).
    pub ticks: u64,
}

/// Pure stall detection over per-source `(progress, backlog)` samples.
///
/// A source stalls when its progress counter is unchanged across
/// `window` consecutive observations while its backlog is non-zero; it
/// fires once per episode and re-arms when progress resumes or the
/// backlog clears. Deterministic — unit tests drive it with synthetic
/// sequences, no threads or clocks involved.
#[derive(Clone, Debug)]
pub struct StallDetector {
    window: u64,
    /// Per source: (last progress value, consecutive stalled ticks,
    /// fired this episode).
    state: Vec<(u64, u64, bool)>,
}

impl StallDetector {
    /// Creates a detector over `sources` sources with the given window
    /// (`window` must be non-zero).
    pub fn new(sources: usize, window: u64) -> Self {
        assert!(window > 0, "stall window must be non-zero");
        StallDetector {
            window,
            state: vec![(0, 0, false); sources],
        }
    }

    /// Feeds one tick of `(progress, backlog)` per source (same order
    /// and length every call). Returns `(source index, stalled
    /// intervals, backlog)` for each source newly flagged this tick.
    pub fn observe(&mut self, samples: &[(u64, u64)]) -> Vec<(usize, u64, u64)> {
        assert_eq!(
            samples.len(),
            self.state.len(),
            "sample count must match source count"
        );
        let mut fired = Vec::new();
        for (i, (&(progress, backlog), state)) in
            samples.iter().zip(self.state.iter_mut()).enumerate()
        {
            let (last, stalled, flagged) = *state;
            if progress == last && backlog > 0 {
                let stalled = stalled + 1;
                let mut flagged = flagged;
                if stalled >= self.window && !flagged {
                    fired.push((i, stalled, backlog));
                    flagged = true;
                }
                *state = (progress, stalled, flagged);
            } else {
                *state = (progress, 0, false);
            }
        }
        fired
    }
}

/// An additional monitored source beyond the shard queues and the
/// recorder. The socket edge registers its reactor through this so
/// connection/byte/frame counters and accept-queue / read-buffer
/// gauges ride the same snapshot blocks — and the same stall watchdog
/// — as everything else.
pub trait OpsSource: Send {
    /// Stable source name for stall flags (e.g. `"edge"`).
    fn name(&self) -> String;

    /// Fills this source's counters and gauges into the tick's registry
    /// and returns the `(progress, backlog)` sample the watchdog
    /// consumes: a frozen progress counter with a non-zero backlog
    /// across consecutive ticks flags the source stalled.
    fn observe(&self, reg: &mut Registry) -> (u64, u64);
}

/// A running ops monitor thread. Create with [`OpsMonitor::spawn`],
/// collect with [`OpsMonitor::stop`] (which takes one final snapshot
/// before returning).
pub struct OpsMonitor {
    thread: std::thread::JoinHandle<OpsOutcome>,
    stop: Arc<(Mutex<bool>, Condvar)>,
}

impl OpsMonitor {
    /// Spawns the monitor over the given shard queues and optional
    /// recorder handle. Errs only when the OS refuses the thread.
    pub fn spawn(
        queues: Vec<Arc<ShardQueue>>,
        recorder: Option<RecorderHandle>,
        policy: SnapshotPolicy,
    ) -> std::io::Result<OpsMonitor> {
        Self::spawn_with_sources(queues, recorder, Vec::new(), policy)
    }

    /// [`OpsMonitor::spawn`] with extra monitored sources appended
    /// after the shards and recorder (watchdog sample order: shards,
    /// recorder, then `sources` in the given order).
    pub fn spawn_with_sources(
        queues: Vec<Arc<ShardQueue>>,
        recorder: Option<RecorderHandle>,
        sources: Vec<Box<dyn OpsSource>>,
        policy: SnapshotPolicy,
    ) -> std::io::Result<OpsMonitor> {
        let stop = Arc::new((Mutex::new(false), Condvar::new()));
        let thread_stop = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("serve-ops".into())
            .spawn(move || {
                run_monitor(&queues, recorder.as_ref(), &sources, policy, &thread_stop)
            })?;
        Ok(OpsMonitor { thread, stop })
    }

    /// Signals the monitor to take one last snapshot and exit, then
    /// joins it and returns everything it observed.
    pub fn stop(self) -> OpsOutcome {
        let (lock, cv) = &*self.stop;
        let mut stopped = lock.lock().unwrap_or_else(|e| e.into_inner());
        *stopped = true;
        drop(stopped);
        cv.notify_all();
        self.thread.join().unwrap_or_default()
    }
}

fn run_monitor(
    queues: &[Arc<ShardQueue>],
    recorder: Option<&RecorderHandle>,
    sources: &[Box<dyn OpsSource>],
    policy: SnapshotPolicy,
    stop: &(Mutex<bool>, Condvar),
) -> OpsOutcome {
    let origin = Instant::now();
    let n_sources = queues.len() + usize::from(recorder.is_some()) + sources.len();
    let mut detector = StallDetector::new(n_sources, policy.stall_intervals.max(1) as u64);
    let mut out = OpsOutcome::default();
    let (lock, cv) = stop;
    loop {
        let guard = lock.lock().unwrap_or_else(|e| e.into_inner());
        let (guard, _) = cv
            .wait_timeout(guard, policy.interval)
            .unwrap_or_else(|e| e.into_inner());
        let stopping = *guard;
        drop(guard);

        out.ticks += 1;
        let (mut registry, mut progress) = observe_sources(queues, recorder);
        for src in sources {
            progress.push(src.observe(&mut registry));
        }
        let snap = Snapshot::capture(out.ticks, origin.elapsed().as_nanos() as u64, &registry);
        let text = snap.to_jsonl();
        out.meta.push(SnapshotMeta {
            seq: snap.seq,
            metrics: snap.metrics(),
            bytes: text.len() as u64,
        });
        out.snapshots.push(text);
        let builtin = queues.len() + usize::from(recorder.is_some());
        for (idx, intervals, backlog) in detector.observe(&progress) {
            let source = if idx < queues.len() {
                format!("shard-{idx}")
            } else if idx < builtin {
                "recorder".to_string()
            } else {
                sources[idx - builtin].name()
            };
            out.stalls.push(StallFlag {
                source,
                intervals,
                backlog,
            });
        }
        if stopping {
            return out;
        }
    }
}

/// Reads every source's health into a fresh registry and the
/// per-source `(progress, backlog)` samples the watchdog consumes
/// (shards first, recorder last; extra [`OpsSource`]s are appended by
/// the monitor loop).
fn observe_sources(
    queues: &[Arc<ShardQueue>],
    recorder: Option<&RecorderHandle>,
) -> (Registry, Vec<(u64, u64)>) {
    let mut reg = Registry::new();
    let mut progress = Vec::with_capacity(queues.len() + 1);
    let (mut depth_sum, mut popped_sum, mut shed_sum) = (0u64, 0u64, 0u64);
    let mut high_water = 0u64;
    for q in queues {
        let depth = q.depth() as u64;
        let popped = q.popped();
        depth_sum += depth;
        popped_sum += popped;
        shed_sum += q.shed();
        high_water = high_water.max(q.take_high_water() as u64);
        progress.push((popped, depth));
    }
    reg.counter("serve.queue.popped").add(popped_sum);
    reg.counter("serve.queue.shed").add(shed_sum);
    reg.gauge("serve.queue.depth").set(depth_sum as f64);
    reg.gauge("serve.queue.high_water").set(high_water as f64);
    reg.gauge("serve.shards").set(queues.len() as f64);
    if let Some(rec) = recorder {
        let stats = rec.stats();
        let depth = rec.depth() as u64;
        reg.counter("serve.recorder.frames").add(stats.frames);
        reg.counter("serve.recorder.rows").add(stats.rows);
        reg.counter("serve.recorder.dropped").add(stats.dropped);
        reg.counter("serve.recorder.drained").add(stats.drained);
        reg.gauge("serve.recorder.depth").set(depth as f64);
        reg.gauge("serve.recorder.max_depth")
            .set(stats.max_depth as f64);
        progress.push((stats.drained, depth));
    }
    (reg, progress)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::{OverflowPolicy, Ticket, WorkItem};
    use crate::wire::ObsFrame;
    use mobisense_telemetry::parse_snapshots;

    #[test]
    fn detector_fires_after_exactly_window_intervals() {
        let mut d = StallDetector::new(2, 2);
        // Tick 1: both have backlog, neither has progressed yet — one
        // stalled interval each, no flag.
        assert!(d.observe(&[(0, 4), (0, 1)]).is_empty());
        // Tick 2: source 0 progresses, source 1 is frozen → flagged.
        assert_eq!(d.observe(&[(5, 4), (0, 1)]), vec![(1, 2, 1)]);
        // Tick 3: still frozen — flagged episodes fire only once.
        assert!(d.observe(&[(5, 0), (0, 1)]).is_empty());
        // Progress resumes, then a new stall fires a fresh episode.
        assert!(d.observe(&[(5, 0), (9, 3)]).is_empty());
        assert!(d.observe(&[(5, 0), (9, 3)]).is_empty());
        assert_eq!(d.observe(&[(5, 0), (9, 3)]), vec![(1, 2, 3)]);
    }

    #[test]
    fn detector_needs_backlog_to_stall() {
        let mut d = StallDetector::new(1, 2);
        // Frozen progress with an empty backlog is idle, not stalled.
        for _ in 0..10 {
            assert!(d.observe(&[(7, 0)]).is_empty());
        }
    }

    fn frame(client_id: u32, seq: u32) -> ObsFrame {
        ObsFrame {
            client_id,
            seq,
            at: seq as u64,
            distance_m: 1.0,
            digest: vec![1.0; 4],
        }
    }

    #[test]
    fn monitor_flags_a_gated_shard_and_snapshots_it() {
        // A queue nobody ever pops: backlog stays positive, the popped
        // counter stays frozen, so the watchdog must fire.
        let q = Arc::new(ShardQueue::new(8));
        for seq in 0..5 {
            q.push(
                WorkItem::frame(Ticket::untraced(), frame(1, seq)),
                OverflowPolicy::Block,
            );
        }
        let policy = SnapshotPolicy {
            interval: Duration::from_millis(2),
            stall_intervals: 2,
        };
        let monitor = OpsMonitor::spawn(vec![Arc::clone(&q)], None, policy).expect("spawn");
        // Sleep long enough for several ticks; the stalled state is
        // stable the whole time, so this cannot flake.
        std::thread::sleep(Duration::from_millis(20));
        let out = monitor.stop();
        assert!(out.ticks >= 3, "monitor ticked: {}", out.ticks);
        assert_eq!(out.snapshots.len() as u64, out.ticks);
        assert!(
            out.stalls
                .iter()
                .any(|s| s.source == "shard-0" && s.backlog == 5),
            "stall flagged: {:?}",
            out.stalls
        );
        // Snapshots parse and carry the queue gauges.
        let snaps = parse_snapshots(&out.snapshots.concat()).expect("parses");
        assert_eq!(snaps.len() as u64, out.ticks);
        let last = snaps.last().expect("non-empty");
        assert_eq!(last.gauges["serve.queue.depth"], 5.0);
        assert_eq!(last.counters["serve.queue.popped"], 0);
        q.close();
    }

    #[test]
    fn high_water_gauge_sees_transient_peaks() {
        let q = Arc::new(ShardQueue::new(16));
        for seq in 0..10 {
            q.push(
                WorkItem::frame(Ticket::untraced(), frame(1, seq)),
                OverflowPolicy::Block,
            );
        }
        // Drain fully: instantaneous depth is 0, but the high-water
        // mark since the last read must still show the peak.
        for _ in 0..10 {
            q.pop().expect("queued frame");
        }
        let (reg, _) = observe_sources(&[Arc::clone(&q)], None);
        assert_eq!(reg.gauge_value("serve.queue.depth"), Some(0.0));
        assert_eq!(reg.gauge_value("serve.queue.high_water"), Some(10.0));
        // The window reset: a second observation reports the current
        // (empty) occupancy, not the stale peak.
        let (reg, _) = observe_sources(&[Arc::clone(&q)], None);
        assert_eq!(reg.gauge_value("serve.queue.high_water"), Some(0.0));
    }
}
