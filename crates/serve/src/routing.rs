//! The one shared client→shard mapping.
//!
//! Every layer that places a client somewhere — fleet generation
//! assigning scenarios, the service routing frames to workers, the
//! socket edge routing decoded frames off a connection — must agree on
//! the same hash, or a frame ingested over the network would reach a
//! different session map than the same frame replayed in-process and
//! the determinism contract would silently break. So the hash and the
//! shard reduction live here, alone, and everything else imports them;
//! there is deliberately nowhere sensible to write a second copy.

/// SplitMix64 finaliser: the deterministic per-client hash behind
/// scenario assignment, seed derivation and shard routing.
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Routes a client to a shard: stable hash of the client id, reduced
/// modulo the shard count.
pub fn shard_of(client_id: u32, n_shards: usize) -> usize {
    assert!(n_shards > 0, "need at least one shard");
    (mix64(client_id as u64 ^ 0x7368_6172) % n_shards as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix64_is_a_bijective_scramble() {
        // Distinct inputs keep distinct outputs (spot check) and the
        // known SplitMix64 constants stay untouched.
        let mut seen = std::collections::BTreeSet::new();
        for x in 0..1000u64 {
            assert!(seen.insert(mix64(x)), "collision at {x}");
        }
        assert_ne!(mix64(0), 0);
    }

    #[test]
    fn shard_of_is_stable_and_in_range() {
        for n in [1usize, 2, 3, 8, 32] {
            for id in 0..512u32 {
                let s = shard_of(id, n);
                assert!(s < n);
                assert_eq!(s, shard_of(id, n), "stable");
            }
        }
    }
}
