//! Live session-residency telemetry for the serving layer.
//!
//! Each shard worker owns a [`mobisense_session::HibernationManager`]
//! privately; what the rest of the process may see is this module's
//! [`SessionGauges`] — a small block of atomics the worker *stores*
//! absolute values into after every work item, and the ops monitor (or
//! any other thread) reads at its own cadence. No locks on the frame
//! path, no cross-shard contention: one writer per gauge block, any
//! number of readers.
//!
//! [`SessionOpsSource`] adapts a run's gauge blocks to the
//! [`OpsSource`] trait so hot/hibernated/resident-bytes land in the
//! same JSONL snapshot stream (and the same stall watchdog) as queue
//! depth and recorder health.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use mobisense_telemetry::Registry;

use crate::ops::OpsSource;

/// One shard worker's session-residency telemetry, written by the
/// owning worker only (absolute stores, `Relaxed` — each field is an
/// independent statistic, no cross-field ordering is promised) and read
/// by the ops monitor.
#[derive(Debug, Default)]
pub struct SessionGauges {
    /// Sessions currently resident (gauge).
    pub hot: AtomicU64,
    /// Sessions currently paged out (gauge).
    pub hibernated: AtomicU64,
    /// Approximate bytes of resident session state (gauge).
    pub resident_bytes: AtomicU64,
    /// Sessions paged out, lifetime (counter).
    pub hibernates: AtomicU64,
    /// Sessions faulted back in, lifetime (counter).
    pub restores: AtomicU64,
    /// Sessions dropped without a snapshot, lifetime (counter).
    pub evictions: AtomicU64,
    /// Total wall-clock nanoseconds spent faulting sessions in,
    /// lifetime (counter; divide by [`restores`](Self::restores) for
    /// the mean fault-in latency).
    pub fault_in_ns: AtomicU64,
}

impl SessionGauges {
    /// A zeroed gauge block.
    pub fn new() -> Self {
        Self::default()
    }

    /// Lifecycle progress: total retire/restore transitions so far. A
    /// frozen value is normal (hibernation idle), so this feeds the
    /// watchdog with a zero backlog — the sessions source can never be
    /// flagged stalled, it only contributes metrics.
    pub fn progress(&self) -> u64 {
        self.hibernates.load(Ordering::Relaxed)
            + self.restores.load(Ordering::Relaxed)
            + self.evictions.load(Ordering::Relaxed)
    }
}

/// Adapts a run's per-shard [`SessionGauges`] to the ops monitor's
/// [`OpsSource`] trait: sums across shards into `serve.sessions.*`
/// metrics on every tick.
pub struct SessionOpsSource {
    shards: Vec<Arc<SessionGauges>>,
}

impl SessionOpsSource {
    /// Wraps the per-shard gauge blocks of one run.
    pub fn new(shards: Vec<Arc<SessionGauges>>) -> Self {
        SessionOpsSource { shards }
    }
}

impl OpsSource for SessionOpsSource {
    fn name(&self) -> String {
        "sessions".into()
    }

    fn observe(&self, reg: &mut Registry) -> (u64, u64) {
        let (mut hot, mut hib, mut res_bytes) = (0u64, 0u64, 0u64);
        let (mut hibernates, mut restores, mut evictions, mut fault_ns) = (0u64, 0u64, 0u64, 0u64);
        for g in &self.shards {
            hot += g.hot.load(Ordering::Relaxed);
            hib += g.hibernated.load(Ordering::Relaxed);
            res_bytes += g.resident_bytes.load(Ordering::Relaxed);
            hibernates += g.hibernates.load(Ordering::Relaxed);
            restores += g.restores.load(Ordering::Relaxed);
            evictions += g.evictions.load(Ordering::Relaxed);
            fault_ns += g.fault_in_ns.load(Ordering::Relaxed);
        }
        reg.gauge("serve.sessions.hot").set(hot as f64);
        reg.gauge("serve.sessions.hibernated").set(hib as f64);
        reg.gauge("serve.sessions.resident_bytes")
            .set(res_bytes as f64);
        reg.counter("serve.sessions.hibernates").add(hibernates);
        reg.counter("serve.sessions.restores").add(restores);
        reg.counter("serve.sessions.evictions").add(evictions);
        reg.counter("serve.sessions.fault_in_ns").add(fault_ns);
        let progress: u64 = self.shards.iter().map(|g| g.progress()).sum();
        // Backlog 0: an idle hibernation subsystem is healthy, never a
        // stall.
        (progress, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observe_sums_shards_and_reports_zero_backlog() {
        let a = Arc::new(SessionGauges::new());
        let b = Arc::new(SessionGauges::new());
        a.hot.store(3, Ordering::Relaxed);
        b.hot.store(5, Ordering::Relaxed);
        a.hibernated.store(2, Ordering::Relaxed);
        a.resident_bytes.store(1000, Ordering::Relaxed);
        b.resident_bytes.store(500, Ordering::Relaxed);
        a.hibernates.store(7, Ordering::Relaxed);
        b.restores.store(4, Ordering::Relaxed);
        b.evictions.store(1, Ordering::Relaxed);
        a.fault_in_ns.store(90, Ordering::Relaxed);

        let src = SessionOpsSource::new(vec![a, b]);
        assert_eq!(src.name(), "sessions");
        let mut reg = Registry::new();
        let (progress, backlog) = src.observe(&mut reg);
        assert_eq!((progress, backlog), (12, 0));
        assert_eq!(reg.gauge_value("serve.sessions.hot"), Some(8.0));
        assert_eq!(reg.gauge_value("serve.sessions.hibernated"), Some(2.0));
        assert_eq!(
            reg.gauge_value("serve.sessions.resident_bytes"),
            Some(1500.0)
        );
        assert_eq!(reg.counter_value("serve.sessions.hibernates"), Some(7));
        assert_eq!(reg.counter_value("serve.sessions.restores"), Some(4));
        assert_eq!(reg.counter_value("serve.sessions.evictions"), Some(1));
        assert_eq!(reg.counter_value("serve.sessions.fault_in_ns"), Some(90));
    }
}
