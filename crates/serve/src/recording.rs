//! The always-on flight recorder: a background recording channel
//! between the serving hot path and a durable trace backend.
//!
//! Production serving must not pay disk latency on the frame path, so
//! recording is asynchronous: producers hand encoded frames (and,
//! after the run, decision-log rows) to a bounded channel via a cheap
//! [`RecorderHandle`], and one dedicated thread drains the channel
//! into a [`RecordBackend`] — in practice `mobisense-store`'s
//! `TraceWriter`, but the trait keeps this crate free of a dependency
//! cycle (the store crate depends on this one, not vice versa).
//!
//! Overflow is an explicit policy, mirroring the ingest queues:
//!
//! * [`RecordPolicy::Block`] — lossless. Producers wait for channel
//!   space, so the store holds **every** served frame and a replay of
//!   it reproduces the live decision log byte-for-byte. Recording
//!   backpressure can slow serving, which the bench measures.
//! * [`RecordPolicy::DropNewest`] — bounded overhead. A full channel
//!   drops the incoming frame and counts it; serving never waits on
//!   the recorder, but the trace is a sample, not a replayable whole.
//!
//! Decision rows always block: they are appended once, after the
//! run, and losing one would silently corrupt the golden log.

use std::collections::VecDeque;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// What a producer does when the recording channel is full.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecordPolicy {
    /// Wait for the recorder thread to drain a slot (lossless; the
    /// recorded trace replays byte-identically).
    Block,
    /// Drop the incoming frame and count it (bounded overhead; the
    /// trace becomes a sample).
    DropNewest,
}

/// Configuration of the recording channel.
#[derive(Clone, Copy, Debug)]
pub struct RecordingConfig {
    /// Channel capacity, in queued records.
    pub capacity: usize,
    /// Overflow policy for observation frames.
    pub policy: RecordPolicy,
}

impl Default for RecordingConfig {
    fn default() -> Self {
        RecordingConfig {
            capacity: 4096,
            policy: RecordPolicy::Block,
        }
    }
}

/// Where recorded bytes go. Implemented by `mobisense-store`'s
/// `TraceWriter` (sealed rotating segments); tests use in-memory
/// backends.
pub trait RecordBackend: Send {
    /// What [`finish`](RecordBackend::finish) yields (e.g. a write
    /// summary).
    type Output: Send;

    /// Persists one wire-encoded observation frame.
    fn record_frame(&mut self, bytes: &[u8]) -> io::Result<()>;

    /// Persists one decision-log row (no trailing newline).
    fn record_row(&mut self, row: &str) -> io::Result<()>;

    /// The channel just drained; flush buffered bytes so live tail
    /// readers can see them. Called between bursts, never per record.
    fn idle(&mut self) -> io::Result<()> {
        Ok(())
    }

    /// Finalizes the backend (seal segments, close files).
    fn finish(self) -> io::Result<Self::Output>;
}

/// Counters of one recording run, readable at any time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecorderStats {
    /// Observation frames accepted onto the channel.
    pub frames: u64,
    /// Decision rows accepted onto the channel.
    pub rows: u64,
    /// Frames dropped by [`RecordPolicy::DropNewest`] (or arriving
    /// after a backend failure closed the channel).
    pub dropped: u64,
    /// Deepest channel occupancy observed.
    pub max_depth: u64,
    /// Records the recorder thread has handed to the backend — the
    /// stall watchdog's progress counter for the recorder.
    pub drained: u64,
}

enum Msg {
    Frame(Vec<u8>),
    Row(String),
}

#[derive(Default)]
struct ChannelInner {
    q: VecDeque<Msg>,
    closed: bool,
}

/// The bounded MPSC channel between producers and the recorder thread.
/// Counters live outside the mutex so [`RecorderHandle::stats`] never
/// contends with the hot path.
struct Channel {
    inner: Mutex<ChannelInner>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
    frames: AtomicU64,
    rows: AtomicU64,
    dropped: AtomicU64,
    max_depth: AtomicU64,
    drained: AtomicU64,
}

impl Channel {
    fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "recording channel capacity must be non-zero");
        Channel {
            inner: Mutex::new(ChannelInner::default()),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
            frames: AtomicU64::new(0),
            rows: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            max_depth: AtomicU64::new(0),
            drained: AtomicU64::new(0),
        }
    }

    /// Enqueues one message. Returns `false` when the message was
    /// dropped (DropNewest overflow, or the channel closed because the
    /// backend failed). `block` forces the lossless path regardless of
    /// the frame policy (decision rows use this).
    fn push(&self, msg: Msg, policy: RecordPolicy, block: bool) -> bool {
        let mut inner = self.lock_recovered();
        if !block && policy == RecordPolicy::DropNewest && inner.q.len() >= self.capacity {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        while inner.q.len() >= self.capacity && !inner.closed {
            // lint: hot-path -- lossless-policy backpressure: the producer parks until the backend drains (woken by pop/close)
            inner = self.not_full.wait(inner).unwrap_or_else(|e| e.into_inner());
        }
        if inner.closed {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        inner.q.push_back(msg);
        self.max_depth
            .fetch_max(inner.q.len() as u64, Ordering::Relaxed);
        drop(inner);
        self.not_empty.notify_one();
        true
    }

    /// Dequeues the oldest message, calling `on_idle` once whenever
    /// the queue transitions to empty while still open (so the backend
    /// can flush between bursts). Returns `None` once closed and
    /// drained.
    fn pop(&self, on_idle: &mut dyn FnMut()) -> Option<Msg> {
        let mut idled = false;
        let mut inner = self.lock_recovered();
        loop {
            if let Some(msg) = inner.q.pop_front() {
                drop(inner);
                self.drained.fetch_add(1, Ordering::Relaxed);
                self.not_full.notify_one();
                return Some(msg);
            }
            if inner.closed {
                return None;
            }
            if !idled {
                // Flush outside the lock: producers keep enqueueing.
                drop(inner);
                on_idle();
                idled = true;
                inner = self.lock_recovered();
                continue;
            }
            inner = self
                .not_empty
                .wait(inner) // lint: hot-path -- drain loop idles until a producer enqueues (woken by push/close)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    fn close(&self) {
        let mut inner = self.lock_recovered();
        inner.closed = true;
        drop(inner);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Closes *and* discards the backlog — the backend died, so queued
    /// records can never be written; leaving them would park blocking
    /// producers forever.
    fn poison(&self) {
        let mut inner = self.lock_recovered();
        inner.closed = true;
        self.dropped
            .fetch_add(inner.q.len() as u64, Ordering::Relaxed);
        inner.q.clear();
        drop(inner);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Locks the channel, recovering from poisoning: the recorder
    /// thread holds this lock only around queue ops that cannot leave
    /// the queue malformed, so a panicking peer must not cascade.
    fn lock_recovered(&self) -> std::sync::MutexGuard<'_, ChannelInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// The cheap, cloneable producer side of the recording channel.
/// [`serve_streams_recorded`](crate::service::serve_streams_recorded)
/// takes one of these; every producer thread records through it.
#[derive(Clone)]
pub struct RecorderHandle {
    chan: Arc<Channel>,
    policy: RecordPolicy,
}

impl RecorderHandle {
    /// Submits one wire-encoded observation frame. Returns `false`
    /// when the frame was dropped (overflow under
    /// [`RecordPolicy::DropNewest`], or backend failure).
    pub fn record_frame(&self, bytes: &[u8]) -> bool {
        let ok = self
            .chan
            .push(Msg::Frame(bytes.to_vec()), self.policy, false);
        if ok {
            self.chan.frames.fetch_add(1, Ordering::Relaxed);
        }
        ok
    }

    /// Submits one decision-log row. Always lossless (blocks on a full
    /// channel): rows are the golden log, and there are few of them.
    pub fn record_row(&self, row: &str) -> bool {
        let ok = self.chan.push(Msg::Row(row.to_owned()), self.policy, true);
        if ok {
            self.chan.rows.fetch_add(1, Ordering::Relaxed);
        }
        ok
    }

    /// A point-in-time snapshot of the run's counters (lock-free; never
    /// contends with the hot path).
    pub fn stats(&self) -> RecorderStats {
        RecorderStats {
            frames: self.chan.frames.load(Ordering::Relaxed),
            rows: self.chan.rows.load(Ordering::Relaxed),
            dropped: self.chan.dropped.load(Ordering::Relaxed),
            max_depth: self.chan.max_depth.load(Ordering::Relaxed),
            drained: self.chan.drained.load(Ordering::Relaxed),
        }
    }

    /// Current channel occupancy — the recorder backlog gauge. Takes
    /// the channel lock, so it belongs on monitoring paths, not the
    /// frame path.
    pub fn depth(&self) -> usize {
        self.chan.lock_recovered().q.len()
    }
}

/// A running background recorder: the channel plus the thread draining
/// it into a backend. Create with [`Recorder::spawn`], pass
/// [`Recorder::handle`] clones to the service, then
/// [`Recorder::finish`] to seal and join.
pub struct Recorder<B: RecordBackend + 'static> {
    handle: RecorderHandle,
    /// `Some` until `finish` (or drop) joins the thread.
    thread: Option<JoinHandle<io::Result<B::Output>>>,
}

impl<B: RecordBackend + 'static> Recorder<B> {
    /// Spawns the recorder thread over `backend`. Errs when the OS
    /// refuses the thread.
    pub fn spawn(backend: B, cfg: RecordingConfig) -> io::Result<Recorder<B>> {
        let chan = Arc::new(Channel::new(cfg.capacity));
        let thread_chan = Arc::clone(&chan);
        let thread = std::thread::Builder::new()
            .name("flight-recorder".into())
            .spawn(move || run_backend(backend, &thread_chan))?;
        Ok(Recorder {
            handle: RecorderHandle {
                chan,
                policy: cfg.policy,
            },
            thread: Some(thread),
        })
    }

    /// The producer-side handle (clone freely; all clones feed the
    /// same channel).
    pub fn handle(&self) -> RecorderHandle {
        self.handle.clone()
    }

    /// Closes the channel, waits for the backlog to drain and the
    /// backend to finalize, and returns the backend's output plus the
    /// run's final counters.
    pub fn finish(mut self) -> io::Result<(B::Output, RecorderStats)> {
        self.handle.chan.close();
        let out = match self.thread.take() {
            Some(thread) => thread
                .join() // lint: hot-path -- shutdown: the channel is closed, so the backend drains its backlog and exits
                .unwrap_or_else(|_| Err(io::Error::other("recorder thread panicked")))?,
            None => return Err(io::Error::other("recorder already joined")),
        };
        Ok((out, self.handle.stats()))
    }
}

impl<B: RecordBackend + 'static> Drop for Recorder<B> {
    /// A recorder dropped without [`Recorder::finish`] closes the
    /// channel — waking any producer parked on a full queue, whose
    /// pending message is counted dropped — and joins the thread, so
    /// dropping can never deadlock producers. The backend's output and
    /// any backend error are discarded; call `finish` to observe them.
    fn drop(&mut self) {
        if let Some(thread) = self.thread.take() {
            self.handle.chan.close();
            // lint: error-swallow -- Drop cannot surface backend output or a panic; finish() is the observing path
            let _ = thread.join();
        }
    }
}

fn run_backend<B: RecordBackend>(mut backend: B, chan: &Channel) -> io::Result<B::Output> {
    let result = loop {
        let mut idle_err = None;
        let msg = chan.pop(&mut || {
            if let Err(e) = backend.idle() {
                idle_err = Some(e);
            }
        });
        if let Some(e) = idle_err {
            break Err(e);
        }
        match msg {
            Some(Msg::Frame(bytes)) => {
                if let Err(e) = backend.record_frame(&bytes) {
                    break Err(e);
                }
            }
            Some(Msg::Row(row)) => {
                if let Err(e) = backend.record_row(&row) {
                    break Err(e);
                }
            }
            None => break Ok(()),
        }
    };
    match result {
        Ok(()) => backend.finish(),
        Err(e) => {
            // Unblock producers before surfacing the failure; their
            // frames count as dropped from here on.
            chan.poison();
            Err(e)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    /// Collects everything in memory; optionally fails after N frames.
    struct MemBackend {
        frames: Vec<Vec<u8>>,
        rows: Vec<String>,
        idles: u64,
        fail_after: Option<usize>,
    }

    impl MemBackend {
        fn new() -> Self {
            MemBackend {
                frames: Vec::new(),
                rows: Vec::new(),
                idles: 0,
                fail_after: None,
            }
        }
    }

    impl RecordBackend for MemBackend {
        type Output = (Vec<Vec<u8>>, Vec<String>, u64);

        fn record_frame(&mut self, bytes: &[u8]) -> io::Result<()> {
            if self.fail_after.is_some_and(|n| self.frames.len() >= n) {
                return Err(io::Error::other("backend full"));
            }
            self.frames.push(bytes.to_vec());
            Ok(())
        }

        fn record_row(&mut self, row: &str) -> io::Result<()> {
            self.rows.push(row.to_owned());
            Ok(())
        }

        fn idle(&mut self) -> io::Result<()> {
            self.idles += 1;
            Ok(())
        }

        fn finish(self) -> io::Result<Self::Output> {
            Ok((self.frames, self.rows, self.idles))
        }
    }

    #[test]
    fn block_policy_is_lossless_and_ordered() {
        let rec = Recorder::spawn(
            MemBackend::new(),
            RecordingConfig {
                capacity: 4,
                policy: RecordPolicy::Block,
            },
        )
        .expect("spawn");
        let h = rec.handle();
        for i in 0..100u8 {
            assert!(h.record_frame(&[i, i.wrapping_mul(3)]));
        }
        assert!(h.record_row("0,done"));
        let ((frames, rows, idles), stats) = rec.finish().expect("finish");
        assert_eq!(frames.len(), 100);
        for (i, f) in frames.iter().enumerate() {
            assert_eq!(f.as_slice(), &[i as u8, (i as u8).wrapping_mul(3)]);
        }
        assert_eq!(rows, vec!["0,done"]);
        assert_eq!(stats.frames, 100);
        assert_eq!(stats.rows, 1);
        assert_eq!(stats.dropped, 0);
        assert!(stats.max_depth >= 1 && stats.max_depth <= 4);
        assert!(idles >= 1, "idle flush ran at least once");
    }

    #[test]
    fn drop_newest_bounds_the_queue_and_counts() {
        // A backend that blocks until released, so the channel must
        // fill and the policy must engage deterministically.
        struct Gated(Arc<AtomicBool>, Vec<Vec<u8>>);
        impl RecordBackend for Gated {
            type Output = usize;
            fn record_frame(&mut self, bytes: &[u8]) -> io::Result<()> {
                while !self.0.load(Ordering::Acquire) {
                    std::thread::yield_now();
                }
                self.1.push(bytes.to_vec());
                Ok(())
            }
            fn record_row(&mut self, _row: &str) -> io::Result<()> {
                Ok(())
            }
            fn finish(self) -> io::Result<usize> {
                Ok(self.1.len())
            }
        }
        let gate = Arc::new(AtomicBool::new(false));
        let rec = Recorder::spawn(
            Gated(Arc::clone(&gate), Vec::new()),
            RecordingConfig {
                capacity: 8,
                policy: RecordPolicy::DropNewest,
            },
        )
        .expect("spawn");
        let h = rec.handle();
        let mut accepted = 0u64;
        for i in 0..1000u32 {
            if h.record_frame(&i.to_le_bytes()) {
                accepted += 1;
            }
        }
        gate.store(true, Ordering::Release);
        let (written, stats) = rec.finish().expect("finish");
        assert_eq!(stats.frames, accepted);
        assert_eq!(stats.frames + stats.dropped, 1000);
        assert!(stats.dropped > 0, "tiny gated channel must drop");
        assert!(stats.max_depth <= 8);
        // Everything accepted was written (conservation).
        assert_eq!(written as u64, accepted);
    }

    #[test]
    fn backend_failure_poisons_without_deadlock() {
        let mut backend = MemBackend::new();
        backend.fail_after = Some(3);
        let rec = Recorder::spawn(
            backend,
            RecordingConfig {
                capacity: 2,
                policy: RecordPolicy::Block,
            },
        )
        .expect("spawn");
        let h = rec.handle();
        // Far more frames than the backend accepts: blocking pushes
        // must not hang once the backend dies.
        let mut all_accepted = true;
        for i in 0..64u8 {
            all_accepted &= h.record_frame(&[i]);
        }
        assert!(!all_accepted, "pushes after the failure are refused");
        let err = rec.finish().expect_err("backend failed");
        assert!(err.to_string().contains("backend full"));
        assert!(h.stats().dropped > 0);
    }

    #[test]
    fn stats_are_readable_mid_run() {
        let rec = Recorder::spawn(MemBackend::new(), RecordingConfig::default()).expect("spawn");
        let h = rec.handle();
        assert_eq!(h.stats(), RecorderStats::default());
        h.record_frame(&[1, 2, 3]);
        assert_eq!(h.stats().frames, 1);
        rec.finish().expect("finish");
    }
}
