//! Bounded per-shard ingest queues with explicit overflow policy.
//!
//! `std::sync::mpsc` offers bounded channels, but its only overflow
//! behaviours are "block" and "fail"; the serving layer also needs
//! **drop-oldest-per-client** shedding (an overloaded controller serves
//! every client its freshest frame rather than a backlog of stale
//! ones). So the queue is hand-rolled: a `Mutex<VecDeque>` with two
//! condvars, one item type, no unsafe.
//!
//! The serve layer has exactly two locks. A worker never takes the
//! recorder channel lock while holding its shard-queue lock-order
//! position's guard (it pops, drops the guard, then records), but the
//! declared order below documents the intent and lets the analyzer
//! reject a future declaration that contradicts it.
// lock-order: serve.shard-queue < serve.recorder-channel

use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::{Condvar, Mutex};
use std::time::Instant;

use mobisense_telemetry::{Stage, StageTrace};
use mobisense_util::units::Nanos;

use crate::wire::ObsFrame;

/// What a producer does when a shard's queue is full.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OverflowPolicy {
    /// Block the producer until the worker drains a slot
    /// (backpressure). Lossless: every submitted frame is processed,
    /// which is what makes the merged decision log independent of the
    /// shard count.
    Block,
    /// Shed load: evict the oldest queued frame of the same client (or
    /// the oldest frame overall when that client has nothing queued)
    /// and enqueue the new one. Lossy and timing-dependent — the shed
    /// counter records every eviction.
    ShedOldestPerClient,
}

/// Per-frame bookkeeping riding alongside an enqueued observation: the
/// ingest wall-clock instant (decision-latency telemetry) plus an
/// optional sampled [`StageTrace`] (per-stage latency telemetry).
#[derive(Clone, Copy, Debug)]
pub struct Ticket {
    /// When the producer materialized the frame.
    pub ingested: Instant,
    /// The sampled stage trace, `None` for the untraced majority.
    pub trace: Option<StageTrace>,
}

impl Ticket {
    /// A plain ticket: ingest stamp only, no stage trace.
    pub fn untraced() -> Self {
        Ticket {
            ingested: Instant::now(),
            trace: None,
        }
    }

    /// A ticket carrying a stage trace started at `Ingest`. One clock
    /// read serves both the ingest stamp and the trace origin, so the
    /// traced path pays no extra read here and the trace origin *is*
    /// the latency epoch.
    pub fn traced() -> Self {
        let now = Instant::now();
        Ticket {
            ingested: now,
            trace: Some(StageTrace::start_at(now)),
        }
    }
}

/// A migrating client's session in transit between two shard workers:
/// the encoded [`SessionSnapshot`] bytes (codec-sealed, so transfer
/// corruption is detected at adoption) plus the bookkeeping the target
/// needs to resume exactly where the source stopped.
///
/// [`SessionSnapshot`]: mobisense_session::SessionSnapshot
#[derive(Clone, Debug)]
pub struct MigrateParcel {
    /// The migrating client.
    pub client_id: u32,
    /// Encoded snapshot bytes, or `None` when the source worker had no
    /// live or hibernated session for the client (the target starts a
    /// fresh session on the client's next frame, exactly as the source
    /// would have).
    pub bytes: Option<Vec<u8>>,
    /// The client's last sim-clock activity at the source (0 when
    /// unknown), so the target's hibernation LRU resumes accurately.
    pub last_at: Nanos,
}

/// One unit of work on a shard queue: the overwhelmingly common decoded
/// observation frame, or a rare control item steering a live session
/// migration. Control items ride the same FIFO as frames so their
/// ordering relative to the frame stream is exact — a `Migrate` marker
/// drains every frame enqueued before it, and an `Adopt` precedes every
/// frame routed to the target after the move.
#[derive(Debug)]
pub enum WorkItem {
    /// One decoded observation frame with its [`Ticket`].
    Frame(Ticket, ObsFrame),
    /// Drain marker: the worker snapshots (or pages in) `client_id`'s
    /// session, forgets it, and sends the parcel back through `reply`.
    Migrate {
        /// The client to extract.
        client_id: u32,
        /// Where the source worker sends the drained parcel.
        reply: mpsc::Sender<MigrateParcel>,
    },
    /// Adoption: the worker restores the parcel's session into its own
    /// client map before processing any frame behind this item.
    Adopt(Box<MigrateParcel>),
}

impl WorkItem {
    /// Wraps a ticketed frame (the shape every frontend submits).
    pub fn frame(ticket: Ticket, frame: ObsFrame) -> Self {
        WorkItem::Frame(ticket, frame)
    }

    /// Whether this is an observation frame (control items are exempt
    /// from capacity accounting and shedding).
    pub fn is_frame(&self) -> bool {
        matches!(self, WorkItem::Frame(..))
    }
}

/// One enqueued work item.
pub type QueueItem = WorkItem;

#[derive(Debug, Default)]
struct Inner {
    q: VecDeque<QueueItem>,
    closed: bool,
    shed: u64,
    popped: u64,
    max_depth: usize,
    /// Deepest occupancy since the last [`ShardQueue::take_high_water`]
    /// read (the ops monitor's between-ticks peak detector).
    high_water: usize,
}

/// A bounded FIFO between one ingest producer and one shard worker.
#[derive(Debug)]
pub struct ShardQueue {
    inner: Mutex<Inner>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

impl ShardQueue {
    /// Creates a queue holding at most `capacity` frames.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be non-zero");
        ShardQueue {
            inner: Mutex::new(Inner {
                q: VecDeque::with_capacity(capacity),
                ..Inner::default()
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
        }
    }

    /// Locks the queue state, recovering a poisoned guard. Poisoning
    /// here only means some peer panicked *while holding the lock*;
    /// every critical section in this module either leaves the
    /// `VecDeque` consistent or is a pure read, so read-side callers
    /// (`shed`, `max_depth`, `close`) must not cascade one worker's
    /// panic into unrelated producers.
    fn lock_recovered(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Enqueues one frame under the given overflow policy. Returns the
    /// number of frames shed to make room (always 0 under
    /// [`OverflowPolicy::Block`]).
    ///
    /// Pushing to a closed queue drops the frame silently; the service
    /// only closes queues after every producer has finished.
    ///
    /// The frame paths (`push`/`pop`) deliberately keep the loud
    /// `expect`: if a peer died mid-mutation the FIFO's contents can no
    /// longer be trusted, and silently serving a maybe-reordered or
    /// maybe-truncated stream would break the determinism contract.
    /// Failing the whole run is the correct outcome there.
    pub fn push(&self, mut item: QueueItem, policy: OverflowPolicy) -> u64 {
        // lint: poison-loud -- frame path: a poisoned FIFO cannot be trusted, fail the run
        let mut inner = self.inner.lock().expect("queue poisoned");
        let mut shed_now = 0u64;
        match (&item, policy) {
            // Control items never wait and never shed: a `Migrate`
            // marker that blocked behind its own shard's backlog while
            // the submit frontend waits on the reply would deadlock the
            // engine, and shedding one would silently lose a session.
            // They are rare (one per migration), so the transient
            // one-over-capacity occupancy is harmless.
            (WorkItem::Migrate { .. } | WorkItem::Adopt(_), _) => {}
            (WorkItem::Frame(..), OverflowPolicy::Block) => {
                while inner.q.len() >= self.capacity && !inner.closed {
                    // lint: poison-loud, hot-path -- fail fast on poison; Block backpressure parks the producer until the worker drains (woken by pop/close)
                    inner = self.not_full.wait(inner).expect("queue poisoned");
                }
            }
            (WorkItem::Frame(_, new), OverflowPolicy::ShedOldestPerClient) => {
                if inner.q.len() >= self.capacity {
                    let client = new.client_id;
                    // Only frames are sheddable; control items must
                    // survive overload, so the eviction scan skips them.
                    let same_client = inner.q.iter().position(
                        |it| matches!(it, WorkItem::Frame(_, f) if f.client_id == client),
                    );
                    let victim =
                        same_client.or_else(|| inner.q.iter().position(WorkItem::is_frame));
                    if let Some(i) = victim {
                        inner.q.remove(i);
                        shed_now = 1;
                        inner.shed += 1;
                    }
                }
            }
        }
        if inner.closed {
            return shed_now;
        }
        // Stamped after any backpressure wait, immediately before
        // insertion, so the dequeue delta is pure queue residency.
        if let WorkItem::Frame(ticket, _) = &mut item {
            if let Some(trace) = ticket.trace.as_mut() {
                trace.mark(Stage::Enqueue);
            }
        }
        inner.q.push_back(item);
        inner.max_depth = inner.max_depth.max(inner.q.len());
        inner.high_water = inner.high_water.max(inner.q.len());
        drop(inner);
        self.not_empty.notify_one();
        shed_now
    }

    /// Enqueues a control item ([`WorkItem::Migrate`] /
    /// [`WorkItem::Adopt`]), bypassing capacity accounting entirely —
    /// equivalent to `push` but named so call sites read as what they
    /// are. Returns `true` if the item was enqueued, `false` if the
    /// queue was already closed (the engine treats that as "shard gone",
    /// not an error).
    pub fn push_control(&self, item: QueueItem) -> bool {
        // lint: poison-loud -- control path: a poisoned FIFO cannot be trusted, fail the run
        let mut inner = self.inner.lock().expect("queue poisoned");
        if inner.closed {
            return false;
        }
        inner.q.push_back(item);
        inner.max_depth = inner.max_depth.max(inner.q.len());
        inner.high_water = inner.high_water.max(inner.q.len());
        drop(inner);
        self.not_empty.notify_one();
        true
    }

    /// Dequeues the oldest frame, blocking while the queue is open and
    /// empty. Returns the frame and the queue depth *before* the pop
    /// (for depth telemetry), or `None` once the queue is closed and
    /// drained.
    pub fn pop(&self) -> Option<(QueueItem, usize)> {
        // lint: poison-loud -- frame path: a poisoned FIFO cannot be trusted, fail the run
        let mut inner = self.inner.lock().expect("queue poisoned");
        loop {
            if let Some(item) = inner.q.pop_front() {
                let depth = inner.q.len() + 1;
                inner.popped += 1;
                drop(inner);
                self.not_full.notify_one();
                return Some((item, depth));
            }
            if inner.closed {
                return None;
            }
            // lint: poison-loud, hot-path -- fail fast on poison; the worker idles here until a producer enqueues (woken by push/close)
            inner = self.not_empty.wait(inner).expect("queue poisoned");
        }
    }

    /// Closes the queue: blocked producers unblock, and the worker sees
    /// `None` once the backlog drains.
    pub fn close(&self) {
        let mut inner = self.lock_recovered();
        inner.closed = true;
        drop(inner);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Frames shed by this queue so far.
    pub fn shed(&self) -> u64 {
        self.lock_recovered().shed
    }

    /// Deepest occupancy the queue has reached.
    pub fn max_depth(&self) -> usize {
        self.lock_recovered().max_depth
    }

    /// Current occupancy (frames queued right now).
    pub fn depth(&self) -> usize {
        self.lock_recovered().q.len()
    }

    /// Frames dequeued by the worker so far (the watchdog's progress
    /// counter).
    pub fn popped(&self) -> u64 {
        self.lock_recovered().popped
    }

    /// Deepest occupancy since the previous call, then resets the
    /// window to the *current* occupancy — so transient overload peaks
    /// between two reads are never lost the way a plain depth gauge
    /// loses them.
    pub fn take_high_water(&self) -> usize {
        let mut inner = self.lock_recovered();
        let hw = inner.high_water;
        inner.high_water = inner.q.len();
        hw
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(client_id: u32, seq: u32) -> ObsFrame {
        ObsFrame {
            client_id,
            seq,
            at: seq as u64,
            distance_m: 1.0,
            digest: vec![1.0; 4],
        }
    }

    fn item(client_id: u32, seq: u32) -> QueueItem {
        WorkItem::frame(Ticket::untraced(), frame(client_id, seq))
    }

    /// Drains the queue, asserting every item is a frame.
    fn drain_frames(q: &ShardQueue) -> Vec<(u32, u32)> {
        let mut got = Vec::new();
        while let Some((it, _)) = q.pop() {
            match it {
                WorkItem::Frame(_, f) => got.push((f.client_id, f.seq)),
                other => panic!("expected frame, got {other:?}"),
            }
        }
        got
    }

    #[test]
    fn fifo_order_preserved() {
        let q = ShardQueue::new(8);
        for seq in 0..5 {
            q.push(item(1, seq), OverflowPolicy::Block);
        }
        q.close();
        let seqs: Vec<u32> = drain_frames(&q).into_iter().map(|(_, s)| s).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn shed_evicts_oldest_of_same_client() {
        let q = ShardQueue::new(3);
        q.push(item(1, 0), OverflowPolicy::ShedOldestPerClient);
        q.push(item(2, 0), OverflowPolicy::ShedOldestPerClient);
        q.push(item(1, 1), OverflowPolicy::ShedOldestPerClient);
        // Full; pushing client 1 again evicts its seq 0, not client 2.
        assert_eq!(q.push(item(1, 2), OverflowPolicy::ShedOldestPerClient), 1);
        q.close();
        assert_eq!(drain_frames(&q), vec![(2, 0), (1, 1), (1, 2)]);
        assert_eq!(q.shed(), 1);
    }

    #[test]
    fn shed_falls_back_to_global_oldest() {
        let q = ShardQueue::new(2);
        q.push(item(1, 0), OverflowPolicy::ShedOldestPerClient);
        q.push(item(2, 0), OverflowPolicy::ShedOldestPerClient);
        // Client 3 has nothing queued: the global oldest (1, 0) goes.
        q.push(item(3, 0), OverflowPolicy::ShedOldestPerClient);
        q.close();
        let clients: Vec<u32> = drain_frames(&q).into_iter().map(|(c, _)| c).collect();
        assert_eq!(clients, vec![2, 3]);
    }

    #[test]
    fn control_items_bypass_capacity_and_survive_shedding() {
        let q = ShardQueue::new(2);
        q.push(item(1, 0), OverflowPolicy::ShedOldestPerClient);
        // A control item enqueues even at capacity, without shedding.
        q.push(item(2, 0), OverflowPolicy::ShedOldestPerClient);
        let (tx, _rx) = mpsc::channel();
        assert!(q.push_control(WorkItem::Migrate {
            client_id: 9,
            reply: tx,
        }));
        assert_eq!(q.depth(), 3, "control item rode over capacity");
        assert_eq!(q.shed(), 0);
        // A frame push at capacity sheds a *frame*, never the marker —
        // client 3 has nothing queued, so the global-oldest frame goes.
        q.push(item(3, 0), OverflowPolicy::ShedOldestPerClient);
        q.close();
        let mut kinds = Vec::new();
        while let Some((it, _)) = q.pop() {
            kinds.push(match it {
                WorkItem::Frame(_, f) => format!("frame:{}", f.client_id),
                WorkItem::Migrate { client_id, .. } => format!("migrate:{client_id}"),
                WorkItem::Adopt(p) => format!("adopt:{}", p.client_id),
            });
        }
        assert_eq!(kinds, vec!["frame:2", "migrate:9", "frame:3"]);
        assert_eq!(q.shed(), 1);
    }

    #[test]
    fn push_control_to_closed_queue_reports_shard_gone() {
        let q = ShardQueue::new(2);
        q.close();
        assert!(!q.push_control(WorkItem::Adopt(Box::new(MigrateParcel {
            client_id: 1,
            bytes: None,
            last_at: 0,
        }))));
    }

    #[test]
    fn close_unblocks_empty_pop() {
        let q = std::sync::Arc::new(ShardQueue::new(1));
        let q2 = q.clone();
        let h = std::thread::spawn(move || q2.pop());
        std::thread::sleep(std::time::Duration::from_millis(10));
        q.close();
        assert!(h.join().expect("no panic").is_none());
    }

    #[test]
    fn stat_reads_survive_a_poisoned_lock() {
        let q = std::sync::Arc::new(ShardQueue::new(2));
        q.push(item(1, 0), OverflowPolicy::Block);
        let q2 = q.clone();
        // A worker dying while holding the lock poisons the mutex...
        let worker = std::thread::spawn(move || {
            let _guard = q2.inner.lock().expect("first locker");
            panic!("worker died holding the queue lock");
        });
        assert!(worker.join().is_err(), "worker panicked as arranged");
        // ...but stat reads and close still work for everyone else,
        assert_eq!(q.shed(), 0);
        assert_eq!(q.max_depth(), 1);
        q.close();
        // while the frame path stays loud by design: a FIFO whose
        // mutation was interrupted can no longer be trusted.
        let q3 = q.clone();
        let popper = std::thread::spawn(move || q3.pop());
        assert!(popper.join().is_err(), "pop fails fast on poison");
    }

    #[test]
    fn high_water_window_keeps_peaks_and_resets() {
        let q = ShardQueue::new(8);
        for seq in 0..6 {
            q.push(item(1, seq), OverflowPolicy::Block);
        }
        for _ in 0..6 {
            q.pop().expect("queued frame");
        }
        assert_eq!(q.depth(), 0);
        assert_eq!(q.popped(), 6);
        // The drained queue still reports the peak once...
        assert_eq!(q.take_high_water(), 6);
        // ...then the window resets to the current occupancy.
        assert_eq!(q.take_high_water(), 0);
        q.push(item(1, 6), OverflowPolicy::Block);
        assert_eq!(q.take_high_water(), 1);
        // All-time max_depth is unaffected by window reads.
        assert_eq!(q.max_depth(), 6);
    }

    #[test]
    fn enqueue_stage_is_stamped_on_traced_items() {
        let q = ShardQueue::new(4);
        q.push(
            WorkItem::frame(Ticket::traced(), frame(1, 0)),
            OverflowPolicy::Block,
        );
        q.close();
        let (it, _) = q.pop().expect("queued frame");
        let WorkItem::Frame(ticket, _) = it else {
            panic!("expected frame");
        };
        let trace = ticket.trace.expect("traced ticket");
        assert!(trace.is_marked(Stage::Enqueue));
        assert!(!trace.is_marked(Stage::Dequeue), "worker marks dequeue");
    }

    #[test]
    fn blocking_push_waits_for_capacity() {
        let q = std::sync::Arc::new(ShardQueue::new(1));
        q.push(item(1, 0), OverflowPolicy::Block);
        let q2 = q.clone();
        let h = std::thread::spawn(move || {
            q2.push(item(1, 1), OverflowPolicy::Block);
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        // The producer is parked; draining one slot lets it through.
        let (it, depth) = q.pop().expect("first frame");
        let WorkItem::Frame(_, f) = it else {
            panic!("expected frame");
        };
        assert_eq!((f.seq, depth), (0, 1));
        h.join().expect("producer finished");
        let (it, _) = q.pop().expect("second frame");
        let WorkItem::Frame(_, f) = it else {
            panic!("expected frame");
        };
        assert_eq!(f.seq, 1);
        assert_eq!(q.shed(), 0);
        assert_eq!(q.max_depth(), 1);
    }
}
