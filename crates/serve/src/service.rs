//! The sharded serving loop: producers pump encoded fleet streams into
//! per-shard queues; shard workers decode nothing (frames arrive
//! decoded), run one [`PipelineSession`] per client, and emit a policy
//! decision on every post-warm-up mode transition.
//!
//! ## Determinism contract
//!
//! Each client id hashes to exactly one shard, its producer submits its
//! frames in sequence order, and the queue is FIFO — so a client's
//! session consumes exactly the same frame sequence whatever the shard
//! count. Under [`OverflowPolicy::Block`] no frame is ever lost, so the
//! merged decision log, sorted by `(client_id, seq)`, is bit-identical
//! for 1, 2 or 8 shards. Under
//! [`OverflowPolicy::ShedOldestPerClient`] losses depend on scheduler
//! timing: throughput survives overload, reproducibility is
//! deliberately given up, and the shed counter says how much was
//! dropped.
//!
//! Workers never share state (one session map, one latency histogram
//! and one depth histogram per shard, merged after join), so shard
//! scaling costs no cross-shard synchronisation.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

use mobisense_core::classifier::Classification;
use mobisense_core::pipeline::{PipelineConfig, PipelineSession};
use mobisense_core::policy::MobilityPolicy;
use mobisense_mobility::{Direction, MobilityMode};
use mobisense_telemetry::metrics::{Histogram, SPAN_NS_BUCKETS};
use mobisense_telemetry::{Event, NoopSink, Registry, Sampler, Sink, Stage, StageHistograms};
use mobisense_util::units::Nanos;

use crate::fleet::{ClientStream, EncodedFleet};
use crate::ops::{OpsMonitor, OpsOutcome, SnapshotMeta, SnapshotPolicy, StallFlag};
use crate::queue::{OverflowPolicy, ShardQueue, Ticket};
use crate::recording::{RecorderHandle, RecorderStats};
use crate::routing::{mix64, shard_of};
use crate::wire::ObsFrame;

/// Queue-depth histogram bucket bounds (frames).
pub const DEPTH_BUCKETS: &[f64] = &[
    1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0, 2048.0, 4096.0,
];

/// Configuration of a serving run.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Worker shards (each gets one ingest producer and one queue).
    pub n_shards: usize,
    /// Per-shard queue capacity (frames).
    pub queue_capacity: usize,
    /// What producers do when a queue fills up.
    pub overflow: OverflowPolicy,
    /// Per-client classification pipeline parameters.
    pub pipeline: PipelineConfig,
    /// Base seed for per-client session noise streams (ToF measurement
    /// noise); the per-client seed derives from it and the client id,
    /// never from the shard, so re-sharding cannot change a session.
    pub session_seed: u64,
    /// Stage-trace sampling: every Nth submitted frame (per producer)
    /// carries a [`mobisense_telemetry::StageTrace`] that stamps each
    /// pipeline stage, feeding the per-stage histograms in
    /// [`ServeReport::stages`]. `0` disables tracing entirely; traces
    /// never influence decisions, only telemetry.
    pub stage_sampling: u32,
    /// When set, a background ops monitor snapshots queue / recorder
    /// health at this cadence and flags stalled sources
    /// ([`ServeReport::snapshots`] / [`ServeReport::stalls`]).
    pub snapshot: Option<SnapshotPolicy>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            n_shards: 2,
            queue_capacity: 512,
            overflow: OverflowPolicy::Block,
            pipeline: PipelineConfig::default(),
            session_seed: 0x5345_5256, // "SERV"
            stage_sampling: 0,
            snapshot: None,
        }
    }
}

impl ServeConfig {
    /// The ToF-noise seed for one client's session.
    pub fn session_seed_for(&self, client_id: u32) -> u64 {
        self.session_seed ^ mix64(client_id as u64 ^ 0x7365_7373)
    }
}

/// One emitted decision: a client's mobility state changed after
/// warm-up, and the Table-2 policy column to apply with it.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ServeDecision {
    /// The client that transitioned.
    pub client_id: u32,
    /// Sequence number of the frame that completed the classification.
    pub seq: u32,
    /// Capture timestamp of that frame (sim clock).
    pub at: Nanos,
    /// The new mobility state.
    pub classification: Classification,
    /// The protocol parameters to push to the AP for this client.
    pub policy: MobilityPolicy,
}

/// Per-shard accounting, reported after the run.
#[derive(Clone, Copy, Debug)]
pub struct ShardSummary {
    /// Shard index.
    pub shard: u32,
    /// Frames this shard's worker processed.
    pub frames: u64,
    /// Decisions this shard emitted.
    pub decisions: u64,
    /// Frames this shard's queue shed.
    pub shed: u64,
    /// Deepest queue occupancy observed.
    pub max_depth: u64,
    /// Latest frame timestamp the worker consumed (sim clock).
    pub last_at: Nanos,
}

/// Aggregate outcome of one serving run.
#[derive(Clone, Debug)]
pub struct ServeReport {
    /// Frames submitted by producers (shed frames included).
    pub frames_in: u64,
    /// Frames consumed by shard workers.
    pub frames_processed: u64,
    /// Frames evicted under load shedding.
    pub shed: u64,
    /// Emitted mode-transition decisions.
    pub decisions: u64,
    /// Emitted decisions per decided mode, in static / environmental /
    /// micro / macro order.
    pub per_mode: [u64; 4],
    /// Ingest-to-decision wall-clock latency (ns) of every frame that
    /// completed a classification.
    pub latency_ns: Histogram,
    /// Queue depth (frames) sampled at every worker pop.
    pub depth: Histogram,
    /// Per-stage latency histograms merged across shards (empty unless
    /// [`ServeConfig::stage_sampling`] > 0).
    pub stages: StageHistograms,
    /// Per-shard stage histograms, index = shard (empty vec when
    /// tracing is off).
    pub per_stage_shard: Vec<StageHistograms>,
    /// Per-shard accounting, index = shard.
    pub per_shard: Vec<ShardSummary>,
    /// Serialized ops snapshots, one JSONL block per monitor tick
    /// (empty unless [`ServeConfig::snapshot`] is set).
    pub snapshots: Vec<String>,
    /// Stalls the ops watchdog flagged during the run.
    pub stalls: Vec<StallFlag>,
    /// Recording-channel counters at the end of the run, when a flight
    /// recorder was attached.
    pub recorder: Option<RecorderStats>,
    /// Wall-clock duration of the whole run.
    pub wall: std::time::Duration,
}

impl ServeReport {
    /// Processed frames per wall-clock second.
    pub fn frames_per_sec(&self) -> f64 {
        self.frames_processed as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    /// Fraction of submitted frames that were shed.
    pub fn shed_rate(&self) -> f64 {
        if self.frames_in == 0 {
            0.0
        } else {
            self.shed as f64 / self.frames_in as f64
        }
    }

    /// Assembles the report into a metrics [`Registry`] — the same
    /// shape the live ops monitor snapshots, so a finished run can be
    /// serialized with [`mobisense_telemetry::Snapshot`] too.
    pub fn registry(&self) -> Registry {
        let mut reg = Registry::new();
        reg.counter("serve.frames_in").add(self.frames_in);
        reg.counter("serve.frames_processed")
            .add(self.frames_processed);
        reg.counter("serve.shed").add(self.shed);
        reg.counter("serve.decisions").add(self.decisions);
        reg.gauge("serve.shards").set(self.per_shard.len() as f64);
        reg.gauge("serve.wall_ns").set(self.wall.as_nanos() as f64);
        if self.latency_ns.count() > 0 {
            reg.histogram("serve.latency_ns", SPAN_NS_BUCKETS)
                .merge(&self.latency_ns);
        }
        if self.depth.count() > 0 {
            reg.histogram("serve.depth", DEPTH_BUCKETS)
                .merge(&self.depth);
        }
        self.stages.fill_registry(&mut reg);
        if let Some(stats) = &self.recorder {
            reg.counter("serve.recorder.frames").add(stats.frames);
            reg.counter("serve.recorder.rows").add(stats.rows);
            reg.counter("serve.recorder.dropped").add(stats.dropped);
            reg.counter("serve.recorder.drained").add(stats.drained);
            reg.gauge("serve.recorder.max_depth")
                .set(stats.max_depth as f64);
        }
        reg
    }
}

fn mode_index(mode: MobilityMode) -> usize {
    match mode {
        MobilityMode::Static => 0,
        MobilityMode::Environmental => 1,
        MobilityMode::Micro => 2,
        MobilityMode::Macro => 3,
    }
}

/// One shard worker's client state.
struct ClientState {
    session: PipelineSession,
    /// Last classification emitted post-warm-up (warm-up decisions never
    /// update this, so the first settled state is always reported).
    last_emitted: Option<Classification>,
}

struct WorkerResult {
    decisions: Vec<ServeDecision>,
    frames: u64,
    last_at: Nanos,
    latency_ns: Histogram,
    depth: Histogram,
    stages: StageHistograms,
}

fn run_worker(queue: &ShardQueue, cfg: &ServeConfig) -> WorkerResult {
    // BTreeMap, not HashMap: per-client state is only keyed lookups
    // today, but the determinism contract bans seed-ordered iteration
    // from ever sneaking into this file.
    let mut sessions: BTreeMap<u32, ClientState> = BTreeMap::new();
    let mut out = WorkerResult {
        decisions: Vec::new(),
        frames: 0,
        last_at: 0,
        latency_ns: Histogram::with_buckets(SPAN_NS_BUCKETS),
        depth: Histogram::with_buckets(DEPTH_BUCKETS),
        stages: StageHistograms::new(),
    };
    let warmup = cfg.pipeline.warmup;
    while let Some(((mut ticket, frame), depth)) = queue.pop() {
        if let Some(trace) = ticket.trace.as_mut() {
            trace.mark(Stage::Dequeue);
        }
        out.depth.observe(depth as f64);
        out.frames += 1;
        out.last_at = out.last_at.max(frame.at);
        let state = sessions
            .entry(frame.client_id)
            .or_insert_with(|| ClientState {
                session: PipelineSession::new(
                    cfg.pipeline.clone(),
                    cfg.session_seed_for(frame.client_id),
                ),
                last_emitted: None,
            });
        let decided = state.session.observe_profile_with(
            frame.at,
            frame.profile(),
            frame.distance_m,
            &mut NoopSink,
        );
        if let Some(trace) = ticket.trace.as_mut() {
            trace.mark(Stage::Classify);
        }
        if let Some(c) = decided {
            if frame.at >= warmup && state.last_emitted != Some(c) {
                state.last_emitted = Some(c);
                out.decisions.push(ServeDecision {
                    client_id: frame.client_id,
                    seq: frame.seq,
                    at: frame.at,
                    classification: c,
                    policy: MobilityPolicy::for_classification(c),
                });
            }
        }
        if let Some(trace) = ticket.trace.as_mut() {
            // One clock read stamps the `Decide` span and, when the
            // classifier emitted, the end-to-end decision latency — the
            // traced path pays no read the untraced path doesn't.
            // lint: determinism -- wall-clock latency telemetry only, never decisions
            let now = Instant::now();
            trace.mark_at(Stage::Decide, now);
            out.stages.observe_trace(trace);
            if decided.is_some() {
                out.latency_ns
                    .observe(now.saturating_duration_since(ticket.ingested).as_nanos() as f64);
            }
        } else if decided.is_some() {
            out.latency_ns
                .observe(ticket.ingested.elapsed().as_nanos() as f64);
        }
    }
    out
}

/// Pumps one shard's client streams into its queue, time-major (frame
/// `i` of every client before frame `i + 1` of any), which preserves
/// each client's sequence order and interleaves clients fairly. Frames
/// are decoded through the wire codec on the way in — the replay path
/// exercises exactly the parser an ingest socket would.
/// When a recorder is attached, each frame's wire encoding is teed to
/// it before the push — so the recording channel sees frames in the
/// same per-client order the shard consumes them, which is what makes
/// a lossless recording replay byte-identically.
fn run_producer(
    queue: &ShardQueue,
    clients: &[&ClientStream],
    overflow: OverflowPolicy,
    recorder: Option<&RecorderHandle>,
    stage_sampling: u32,
) -> u64 {
    let max_frames = clients.iter().map(|s| s.n_frames).max().unwrap_or(0);
    let mut submitted = 0u64;
    let mut sampler = Sampler::every(stage_sampling);
    for i in 0..max_frames {
        for stream in clients {
            if i >= stream.n_frames {
                continue;
            }
            // The ingest wall-clock stamp (inside the ticket) feeds
            // latency telemetry only, never decisions; a sampled ticket
            // additionally carries a stage trace started at `Ingest`.
            let mut ticket = if sampler.sample() {
                Ticket::traced()
            } else {
                Ticket::untraced()
            };
            if let Some(rec) = recorder {
                rec.record_frame(stream.frame(i));
                if let Some(trace) = ticket.trace.as_mut() {
                    trace.mark(Stage::Record);
                }
            }
            queue.push((ticket, stream.obs(i)), overflow);
            submitted += 1;
        }
    }
    queue.close();
    submitted
}

/// The decode-side half of a serving run, shared by every frontend:
/// per-shard bounded queues plus one owned worker thread each.
///
/// [`serve_streams`]' in-process producers and `mobisense-edge`'s
/// socket reactor both feed the same engine through
/// [`ShardEngine::submit`] (or by pushing to [`ShardEngine::queues`]
/// directly), so a frame ingested over a socket runs through exactly
/// the worker, session map and decision path a replayed frame does —
/// which is what makes a socket-fed decision log comparable
/// byte-for-byte to the golden in-process log.
pub struct ShardEngine {
    queues: Vec<Arc<ShardQueue>>,
    workers: Vec<std::thread::JoinHandle<WorkerResult>>,
    overflow: OverflowPolicy,
    stage_sampling: u32,
    started: Instant,
}

impl ShardEngine {
    /// Spawns `cfg.n_shards` queues and worker threads. Errs only when
    /// the OS refuses a thread.
    pub fn spawn(cfg: &ServeConfig) -> std::io::Result<ShardEngine> {
        assert!(cfg.n_shards > 0, "need at least one shard");
        // lint: determinism -- run wall clock feeds the serve report only, never decisions
        let started = Instant::now();
        let queues: Vec<Arc<ShardQueue>> = (0..cfg.n_shards)
            .map(|_| Arc::new(ShardQueue::new(cfg.queue_capacity)))
            .collect();
        let workers = queues
            .iter()
            .enumerate()
            .map(|(i, q)| {
                let q = Arc::clone(q);
                let cfg = cfg.clone();
                std::thread::Builder::new()
                    .name(format!("shard-worker-{i}"))
                    .spawn(move || run_worker(&q, &cfg))
            })
            .collect::<std::io::Result<Vec<_>>>()?;
        Ok(ShardEngine {
            queues,
            workers,
            overflow: cfg.overflow,
            stage_sampling: cfg.stage_sampling,
            started,
        })
    }

    /// The engine's shard count.
    pub fn n_shards(&self) -> usize {
        self.queues.len()
    }

    /// The per-shard queues, index = shard (for frontends that pump
    /// whole per-shard batches, like the in-process producers).
    pub fn queues(&self) -> &[Arc<ShardQueue>] {
        &self.queues
    }

    /// Routes one decoded frame to its shard's queue under the engine's
    /// overflow policy. Returns the number of frames shed to make room
    /// (always 0 under [`OverflowPolicy::Block`]).
    pub fn submit(&self, ticket: Ticket, frame: ObsFrame) -> u64 {
        let shard = shard_of(frame.client_id, self.queues.len());
        self.queues[shard].push((ticket, frame), self.overflow)
    }

    /// Closes every queue, joins the workers and assembles the run's
    /// merged decision log (sorted by `(client_id, seq)`) and report.
    /// `frames_in` is the frontend's count of submitted frames (shed
    /// frames included); the caller fills the report fields only it
    /// knows (snapshots, stalls, recorder counters).
    pub fn finish(self, frames_in: u64) -> (Vec<ServeDecision>, ServeReport) {
        for q in &self.queues {
            q.close();
        }
        let results: Vec<WorkerResult> = self
            .workers
            .into_iter()
            .map(|w| w.join().expect("worker panicked"))
            .collect();
        let mut decisions: Vec<ServeDecision> = Vec::new();
        let mut report = ServeReport {
            frames_in,
            frames_processed: 0,
            shed: 0,
            decisions: 0,
            per_mode: [0; 4],
            latency_ns: Histogram::with_buckets(SPAN_NS_BUCKETS),
            depth: Histogram::with_buckets(DEPTH_BUCKETS),
            stages: StageHistograms::new(),
            per_stage_shard: Vec::new(),
            per_shard: Vec::with_capacity(self.queues.len()),
            snapshots: Vec::new(),
            stalls: Vec::new(),
            recorder: None,
            wall: self.started.elapsed(),
        };
        for (shard, (result, queue)) in results.iter().zip(&self.queues).enumerate() {
            report.frames_processed += result.frames;
            report.shed += queue.shed();
            report.latency_ns.merge(&result.latency_ns);
            report.depth.merge(&result.depth);
            if self.stage_sampling > 0 {
                report.stages.merge(&result.stages);
                report.per_stage_shard.push(result.stages.clone());
            }
            report.per_shard.push(ShardSummary {
                shard: shard as u32,
                frames: result.frames,
                decisions: result.decisions.len() as u64,
                shed: queue.shed(),
                max_depth: queue.max_depth() as u64,
                last_at: result.last_at,
            });
            decisions.extend_from_slice(&result.decisions);
        }
        decisions.sort_by_key(|d| (d.client_id, d.seq));
        report.decisions = decisions.len() as u64;
        for d in &decisions {
            report.per_mode[mode_index(d.classification.mode)] += 1;
        }
        (decisions, report)
    }
}

/// Emits the standard end-of-run telemetry for a serve report: one
/// [`Event::ServeShard`] per shard, one [`Event::Snapshot`] per ops
/// tick, one [`Event::Stall`] per watchdog flag, and the `serve.run`
/// wall-clock span. Shared by the in-process service and the socket
/// edge so both run shapes trace identically.
pub fn emit_report_events<S: Sink + ?Sized>(
    report: &ServeReport,
    ops_meta: &[SnapshotMeta],
    sink: &mut S,
) {
    if !sink.enabled() {
        return;
    }
    for s in &report.per_shard {
        sink.record(Event::ServeShard {
            at: s.last_at,
            shard: s.shard,
            frames: s.frames,
            decisions: s.decisions,
            shed: s.shed,
            max_depth: s.max_depth,
        });
    }
    // Ops events are wall-clock phenomena with no sim timestamp;
    // `at` is 0 by convention (documented on the variants).
    for m in ops_meta {
        sink.record(Event::Snapshot {
            at: 0,
            seq: m.seq,
            metrics: m.metrics,
            bytes: m.bytes,
        });
    }
    for stall in &report.stalls {
        sink.record(Event::Stall {
            at: 0,
            source: stall.source.clone(),
            intervals: stall.intervals,
            backlog: stall.backlog,
        });
    }
    sink.span_ns("serve.run", report.wall.as_nanos() as u64);
}

/// Serves a whole fleet: spawns one producer and one worker per shard,
/// waits for every stream to drain, and returns the merged decision log
/// (sorted by client id, then sequence) plus the run report.
///
/// Telemetry lands in `sink` after the threads join: one
/// [`Event::ServeShard`] per shard and a `serve.run` wall-clock span.
pub fn serve_fleet<S: Sink + ?Sized>(
    cfg: &ServeConfig,
    fleet: &EncodedFleet,
    sink: &mut S,
) -> (Vec<ServeDecision>, ServeReport) {
    serve_streams(cfg, &fleet.streams, sink)
}

/// Serves a bare set of client streams — the entry point replay takes
/// when streams were rebuilt from a recorded trace rather than
/// generated as a fleet. [`serve_fleet`] is this with a fleet's
/// streams; the determinism contract is identical.
pub fn serve_streams<S: Sink + ?Sized>(
    cfg: &ServeConfig,
    streams: &[ClientStream],
    sink: &mut S,
) -> (Vec<ServeDecision>, ServeReport) {
    serve_streams_inner(cfg, streams, None, sink)
}

/// [`serve_streams`] with the flight recorder attached: every frame's
/// wire encoding is teed onto `recorder`'s channel as its producer
/// submits it, and after the run the golden decision log (every CSV
/// line of [`decision_log_csv`], header included — matching the
/// store's `record_fleet` layout) is appended as decision rows.
///
/// Under [`crate::recording::RecordPolicy::Block`] the recording is
/// lossless, so replaying the resulting store reproduces this run's
/// decision log byte-for-byte; under `DropNewest` serving never waits
/// on the recorder and the drop counter says what the trace is
/// missing. Emits one [`Event::ServeRecorder`] with the channel
/// counters alongside the usual per-shard events.
pub fn serve_streams_recorded<S: Sink + ?Sized>(
    cfg: &ServeConfig,
    streams: &[ClientStream],
    recorder: &RecorderHandle,
    sink: &mut S,
) -> (Vec<ServeDecision>, ServeReport) {
    let (decisions, mut report) = serve_streams_inner(cfg, streams, Some(recorder), sink);
    for line in decision_log_csv(&decisions).lines() {
        recorder.record_row(line);
    }
    report.recorder = Some(recorder.stats());
    if sink.enabled() {
        let stats = recorder.stats();
        let at = report
            .per_shard
            .iter()
            .map(|s| s.last_at)
            .max()
            .unwrap_or(0);
        sink.record(Event::ServeRecorder {
            at,
            frames: stats.frames,
            rows: stats.rows,
            dropped: stats.dropped,
            max_depth: stats.max_depth,
        });
    }
    (decisions, report)
}

fn serve_streams_inner<S: Sink + ?Sized>(
    cfg: &ServeConfig,
    streams: &[ClientStream],
    recorder: Option<&RecorderHandle>,
    sink: &mut S,
) -> (Vec<ServeDecision>, ServeReport) {
    let engine = ShardEngine::spawn(cfg).expect("shard workers spawn");
    let mut by_shard: Vec<Vec<&ClientStream>> = vec![Vec::new(); cfg.n_shards];
    for stream in streams {
        by_shard[shard_of(stream.client_id, cfg.n_shards)].push(stream);
    }

    // The ops monitor observes the run from outside the frame path; it
    // is spawned before the workers and stopped (with one final tick)
    // after they drain, so its snapshots bracket the whole run.
    let monitor = cfg.snapshot.map(|policy| {
        OpsMonitor::spawn(engine.queues().to_vec(), recorder.cloned(), policy)
            .expect("ops monitor spawn")
    });

    let mut frames_in = 0u64;
    std::thread::scope(|scope| {
        let producers: Vec<_> = engine
            .queues()
            .iter()
            .zip(&by_shard)
            .map(|(q, clients)| {
                let q = Arc::clone(q);
                let clients: &[&ClientStream] = clients;
                scope.spawn(move || {
                    run_producer(&q, clients, cfg.overflow, recorder, cfg.stage_sampling)
                })
            })
            .collect();
        for p in producers {
            frames_in += p.join().expect("producer panicked");
        }
    });
    let (decisions, mut report) = engine.finish(frames_in);
    let ops: OpsOutcome = monitor.map(OpsMonitor::stop).unwrap_or_default();
    report.snapshots = ops.snapshots;
    report.stalls = ops.stalls;
    report.recorder = recorder.map(RecorderHandle::stats);

    emit_report_events(&report, &ops.meta, sink);
    (decisions, report)
}

/// Renders a decision log as canonical CSV — the byte string the
/// determinism tests compare across shard counts.
pub fn decision_log_csv(decisions: &[ServeDecision]) -> String {
    let mut out = String::from(
        "client_id,seq,at_ns,mode,direction,roam,probe_ns,retries,agg_ns,bf_ns,mu_ns\n",
    );
    for d in decisions {
        let dir = match d.classification.direction {
            Some(Direction::Towards) => "towards",
            Some(Direction::Away) => "away",
            None => "-",
        };
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{},{}\n",
            d.client_id,
            d.seq,
            d.at,
            d.classification.mode.label(),
            dir,
            u8::from(d.policy.encourage_roaming),
            d.policy.probe_interval,
            d.policy.rate_retries,
            d.policy.aggregation_limit,
            d.policy.bf_feedback_period,
            d.policy.mu_mimo_feedback_period,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::FleetConfig;
    use mobisense_util::units::{MILLISECOND, SECOND};

    fn small_fleet() -> EncodedFleet {
        EncodedFleet::generate(&FleetConfig {
            n_clients: 8,
            duration: 9 * SECOND,
            step: 50 * MILLISECOND,
            base_seed: 11,
            gen_threads: 2,
            ..FleetConfig::default()
        })
    }

    #[test]
    fn serves_every_frame_and_emits_decisions() {
        let fleet = small_fleet();
        let cfg = ServeConfig::default();
        let (decisions, report) = serve_fleet(&cfg, &fleet, &mut NoopSink);
        assert_eq!(report.frames_in, fleet.total_frames());
        assert_eq!(report.frames_processed, fleet.total_frames());
        assert_eq!(report.shed, 0, "blocking mode never sheds");
        assert!(!decisions.is_empty(), "fleet produced no decisions");
        assert_eq!(report.decisions as usize, decisions.len());
        assert_eq!(report.per_mode.iter().sum::<u64>(), report.decisions);
        // Every client settles into at least one post-warm-up state.
        let clients: std::collections::BTreeSet<u32> =
            decisions.iter().map(|d| d.client_id).collect();
        assert_eq!(clients.len(), 8, "all clients decided: {clients:?}");
        // Decision latency was measured for at least every emitted one.
        assert!(report.latency_ns.count() >= report.decisions);
        assert_eq!(report.depth.count(), report.frames_processed);
    }

    #[test]
    fn decision_log_is_shard_count_invariant() {
        let fleet = small_fleet();
        let mut logs = Vec::new();
        for n_shards in [1usize, 2, 8] {
            let cfg = ServeConfig {
                n_shards,
                ..ServeConfig::default()
            };
            let (decisions, report) = serve_fleet(&cfg, &fleet, &mut NoopSink);
            assert_eq!(report.per_shard.len(), n_shards);
            logs.push(decision_log_csv(&decisions));
        }
        assert_eq!(logs[0], logs[1], "1 vs 2 shards");
        assert_eq!(logs[0], logs[2], "1 vs 8 shards");
    }

    #[test]
    fn sorted_log_and_policies_are_consistent() {
        let fleet = small_fleet();
        let (decisions, _) = serve_fleet(&ServeConfig::default(), &fleet, &mut NoopSink);
        assert!(
            decisions
                .windows(2)
                .all(|w| (w[0].client_id, w[0].seq) < (w[1].client_id, w[1].seq)),
            "log sorted by (client, seq)"
        );
        for d in &decisions {
            assert!(d.at >= PipelineConfig::default().warmup);
            assert_eq!(
                d.policy,
                MobilityPolicy::for_classification(d.classification)
            );
        }
        // Consecutive decisions of one client differ (transitions only).
        for w in decisions.windows(2) {
            if w[0].client_id == w[1].client_id {
                assert_ne!(w[0].classification, w[1].classification);
            }
        }
    }

    #[test]
    fn shard_events_and_span_reach_the_sink() {
        let fleet = small_fleet();
        let mut tel = mobisense_telemetry::Telemetry::new();
        let cfg = ServeConfig {
            n_shards: 2,
            ..ServeConfig::default()
        };
        let (_, report) = serve_fleet(&cfg, &fleet, &mut tel);
        let shard_events: Vec<_> = tel
            .events()
            .filter(|e| matches!(e, Event::ServeShard { .. }))
            .collect();
        assert_eq!(shard_events.len(), 2);
        let total: u64 = report.per_shard.iter().map(|s| s.frames).sum();
        assert_eq!(total, report.frames_processed);
        let (count, mean_ns) = tel
            .registry
            .histogram_snapshot("serve.run")
            .expect("span recorded");
        assert_eq!(count, 1);
        assert!(mean_ns > 0.0);
    }

    #[test]
    fn overload_sheds_and_conserves_frames() {
        let fleet = small_fleet();
        // A tiny queue under an 8-client burst: whatever the scheduler
        // does, frame conservation must hold exactly.
        let cfg = ServeConfig {
            n_shards: 1,
            queue_capacity: 4,
            overflow: OverflowPolicy::ShedOldestPerClient,
            ..ServeConfig::default()
        };
        let (_, report) = serve_fleet(&cfg, &fleet, &mut NoopSink);
        assert_eq!(
            report.frames_in,
            report.frames_processed + report.shed,
            "every submitted frame is processed or shed"
        );
        assert!(report.shed_rate() <= 1.0);
    }

    #[test]
    fn stage_tracing_changes_no_decision_and_fills_histograms() {
        let fleet = small_fleet();
        let plain = ServeConfig::default();
        let traced = ServeConfig {
            stage_sampling: 4,
            ..ServeConfig::default()
        };
        let (d_plain, r_plain) = serve_fleet(&plain, &fleet, &mut NoopSink);
        let (d_traced, r_traced) = serve_fleet(&traced, &fleet, &mut NoopSink);
        // Tracing is telemetry-only: the decision log stays byte-identical.
        assert_eq!(
            decision_log_csv(&d_plain),
            decision_log_csv(&d_traced),
            "tracing must not perturb decisions"
        );
        assert_eq!(r_plain.stages.traces(), 0);
        let expected = fleet.total_frames() / 4;
        let traces = r_traced.stages.traces();
        // Each producer samples every 4th of its own submissions, so
        // the total is within one frame per producer of the ideal.
        assert!(
            traces >= expected.saturating_sub(traced.n_shards as u64) && traces <= expected + 1,
            "sampled ~1 in 4: {traces} vs {expected}"
        );
        assert_eq!(r_traced.per_stage_shard.len(), traced.n_shards);
        // Every traced frame passed enqueue, dequeue, classify, decide.
        for stage in [
            Stage::Enqueue,
            Stage::Dequeue,
            Stage::Classify,
            Stage::Decide,
        ] {
            assert_eq!(r_traced.stages.get(stage).count(), traces, "{stage:?}");
        }
        // No recorder attached, so the record stage never fired.
        assert_eq!(r_traced.stages.get(Stage::Record).count(), 0);
    }

    #[test]
    fn snapshot_monitor_reports_and_emits_events() {
        let fleet = small_fleet();
        let mut tel = mobisense_telemetry::Telemetry::new();
        let cfg = ServeConfig {
            stage_sampling: 8,
            snapshot: Some(SnapshotPolicy {
                interval: std::time::Duration::from_millis(5),
                stall_intervals: 2,
            }),
            ..ServeConfig::default()
        };
        let (_, report) = serve_fleet(&cfg, &fleet, &mut tel);
        // The monitor's final tick guarantees at least one snapshot
        // even on a fast run.
        assert!(!report.snapshots.is_empty());
        let snaps = mobisense_telemetry::parse_snapshots(&report.snapshots.concat())
            .expect("snapshots parse");
        assert_eq!(snaps.len(), report.snapshots.len());
        let snap_events = tel
            .events()
            .filter(|e| matches!(e, Event::Snapshot { .. }))
            .count();
        assert_eq!(snap_events, report.snapshots.len());
        // A healthy drain never stalls.
        assert!(report.stalls.is_empty(), "stalls: {:?}", report.stalls);
        assert!(!tel.events().any(|e| matches!(e, Event::Stall { .. })));
        // The report assembles into a registry with the stage hists.
        let reg = report.registry();
        assert_eq!(
            reg.counter_value("serve.frames_processed"),
            Some(report.frames_processed)
        );
        assert!(reg.histogram_snapshot("stage.total").is_some());
    }

    #[test]
    fn csv_log_has_header_and_one_row_per_decision() {
        let fleet = small_fleet();
        let (decisions, _) = serve_fleet(&ServeConfig::default(), &fleet, &mut NoopSink);
        let csv = decision_log_csv(&decisions);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), decisions.len() + 1);
        assert!(lines[0].starts_with("client_id,seq,at_ns,mode"));
        assert!(lines[1].split(',').count() == 11);
    }
}
