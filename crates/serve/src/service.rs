//! The sharded serving loop: producers pump encoded fleet streams into
//! per-shard queues; shard workers decode nothing (frames arrive
//! decoded), run one [`PipelineSession`] per client, and emit a policy
//! decision on every post-warm-up mode transition.
//!
//! ## Determinism contract
//!
//! Each client id hashes to exactly one shard, its producer submits its
//! frames in sequence order, and the queue is FIFO — so a client's
//! session consumes exactly the same frame sequence whatever the shard
//! count. Under [`OverflowPolicy::Block`] no frame is ever lost, so the
//! merged decision log, sorted by `(client_id, seq)`, is bit-identical
//! for 1, 2 or 8 shards. Under
//! [`OverflowPolicy::ShedOldestPerClient`] losses depend on scheduler
//! timing: throughput survives overload, reproducibility is
//! deliberately given up, and the shed counter says how much was
//! dropped.
//!
//! Workers never share state (one session map, one latency histogram
//! and one depth histogram per shard, merged after join), so shard
//! scaling costs no cross-shard synchronisation.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, RwLock};
use std::time::Instant;

use mobisense_core::classifier::Classification;
use mobisense_core::pipeline::{PipelineConfig, PipelineSession};
use mobisense_core::policy::MobilityPolicy;
use mobisense_mobility::{Direction, MobilityMode};
use mobisense_session::{
    HibernationConfig, HibernationManager, MemoryPager, RetirePolicy, SessionSnapshot,
    SnapshotPager,
};
use mobisense_telemetry::metrics::{Histogram, SPAN_NS_BUCKETS};
use mobisense_telemetry::{Event, NoopSink, Registry, Sampler, Sink, Stage, StageHistograms};
use mobisense_util::units::Nanos;

use crate::fleet::{ClientStream, EncodedFleet};
use crate::ops::{OpsMonitor, OpsOutcome, SnapshotMeta, SnapshotPolicy, StallFlag};
use crate::queue::{MigrateParcel, OverflowPolicy, ShardQueue, Ticket, WorkItem};
use crate::recording::{RecorderHandle, RecorderStats};
use crate::routing::{mix64, shard_of};
use crate::sessions::{SessionGauges, SessionOpsSource};
use crate::wire::ObsFrame;

/// A worker's snapshot storage backend, one per shard.
pub type BoxedPager = Box<dyn SnapshotPager + Send>;

/// Queue-depth histogram bucket bounds (frames).
pub const DEPTH_BUCKETS: &[f64] = &[
    1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0, 2048.0, 4096.0,
];

/// Configuration of a serving run.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Worker shards (each gets one ingest producer and one queue).
    pub n_shards: usize,
    /// Per-shard queue capacity (frames).
    pub queue_capacity: usize,
    /// What producers do when a queue fills up.
    pub overflow: OverflowPolicy,
    /// Per-client classification pipeline parameters.
    pub pipeline: PipelineConfig,
    /// Base seed for per-client session noise streams (ToF measurement
    /// noise); the per-client seed derives from it and the client id,
    /// never from the shard, so re-sharding cannot change a session.
    pub session_seed: u64,
    /// Stage-trace sampling: every Nth submitted frame (per producer)
    /// carries a [`mobisense_telemetry::StageTrace`] that stamps each
    /// pipeline stage, feeding the per-stage histograms in
    /// [`ServeReport::stages`]. `0` disables tracing entirely; traces
    /// never influence decisions, only telemetry.
    pub stage_sampling: u32,
    /// When set, a background ops monitor snapshots queue / recorder
    /// health at this cadence and flags stalled sources
    /// ([`ServeReport::snapshots`] / [`ServeReport::stalls`]).
    pub snapshot: Option<SnapshotPolicy>,
    /// Session residency policy: when idle (or hot-set-overflow)
    /// sessions are hibernated into the shard's pager — or, under
    /// [`RetirePolicy::Evict`], dropped outright. The default disables
    /// both triggers: sessions stay resident forever, exactly the
    /// pre-hibernation behaviour. Retirement uses the **sim clock**
    /// (frame timestamps), so victim selection is deterministic and the
    /// decision log stays byte-identical with hibernation on or off.
    pub hibernation: HibernationConfig,
    /// When `true`, workers record one [`Event::SessionHibernate`] /
    /// [`Event::SessionRestore`] per lifecycle transition into
    /// [`ServeReport::session_events`] (replayed to the sink at end of
    /// run). Off by default: a 100k-client fleet cycling its working
    /// set generates far more lifecycle events than anyone wants to
    /// buffer; the aggregate counters in [`ServeReport::sessions`] and
    /// the live `serve.sessions.*` gauges are always on.
    pub session_events: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            n_shards: 2,
            queue_capacity: 512,
            overflow: OverflowPolicy::Block,
            pipeline: PipelineConfig::default(),
            session_seed: 0x5345_5256, // "SERV"
            stage_sampling: 0,
            snapshot: None,
            hibernation: HibernationConfig::default(),
            session_events: false,
        }
    }
}

impl ServeConfig {
    /// The ToF-noise seed for one client's session.
    pub fn session_seed_for(&self, client_id: u32) -> u64 {
        self.session_seed ^ mix64(client_id as u64 ^ 0x7365_7373)
    }
}

/// One emitted decision: a client's mobility state changed after
/// warm-up, and the Table-2 policy column to apply with it.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ServeDecision {
    /// The client that transitioned.
    pub client_id: u32,
    /// Sequence number of the frame that completed the classification.
    pub seq: u32,
    /// Capture timestamp of that frame (sim clock).
    pub at: Nanos,
    /// The new mobility state.
    pub classification: Classification,
    /// The protocol parameters to push to the AP for this client.
    pub policy: MobilityPolicy,
}

/// Per-shard accounting, reported after the run.
#[derive(Clone, Copy, Debug)]
pub struct ShardSummary {
    /// Shard index.
    pub shard: u32,
    /// Frames this shard's worker processed.
    pub frames: u64,
    /// Decisions this shard emitted.
    pub decisions: u64,
    /// Frames this shard's queue shed.
    pub shed: u64,
    /// Deepest queue occupancy observed.
    pub max_depth: u64,
    /// Latest frame timestamp the worker consumed (sim clock).
    pub last_at: Nanos,
}

/// Aggregate outcome of one serving run.
#[derive(Clone, Debug)]
pub struct ServeReport {
    /// Frames submitted by producers (shed frames included).
    pub frames_in: u64,
    /// Frames consumed by shard workers.
    pub frames_processed: u64,
    /// Frames evicted under load shedding.
    pub shed: u64,
    /// Emitted mode-transition decisions.
    pub decisions: u64,
    /// Emitted decisions per decided mode, in static / environmental /
    /// micro / macro order.
    pub per_mode: [u64; 4],
    /// Ingest-to-decision wall-clock latency (ns) of every frame that
    /// completed a classification.
    pub latency_ns: Histogram,
    /// Queue depth (frames) sampled at every worker pop.
    pub depth: Histogram,
    /// Per-stage latency histograms merged across shards (empty unless
    /// [`ServeConfig::stage_sampling`] > 0).
    pub stages: StageHistograms,
    /// Per-shard stage histograms, index = shard (empty vec when
    /// tracing is off).
    pub per_stage_shard: Vec<StageHistograms>,
    /// Per-shard accounting, index = shard.
    pub per_shard: Vec<ShardSummary>,
    /// Serialized ops snapshots, one JSONL block per monitor tick
    /// (empty unless [`ServeConfig::snapshot`] is set).
    pub snapshots: Vec<String>,
    /// Stalls the ops watchdog flagged during the run.
    pub stalls: Vec<StallFlag>,
    /// Recording-channel counters at the end of the run, when a flight
    /// recorder was attached.
    pub recorder: Option<RecorderStats>,
    /// Session lifecycle totals (hibernate / restore / evict / migrate)
    /// summed across shards.
    pub sessions: SessionsSummary,
    /// Wall-clock latency (ns) of every session fault-in: the price a
    /// hibernated client pays on its first frame back.
    pub fault_in_ns: Histogram,
    /// Per-occurrence session lifecycle events, in shard order then
    /// migrations (empty unless [`ServeConfig::session_events`] is set;
    /// migrations are always included). Replayed to the sink by
    /// [`emit_report_events`].
    pub session_events: Vec<Event>,
    /// Wall-clock duration of the whole run.
    pub wall: std::time::Duration,
}

/// Session lifecycle totals for one run, summed across shards.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SessionsSummary {
    /// Sessions paged out over the run.
    pub hibernated: u64,
    /// Sessions faulted back in over the run.
    pub restored: u64,
    /// Sessions dropped without a snapshot over the run.
    pub evicted: u64,
    /// Live migrations completed over the run.
    pub migrations: u64,
    /// Sessions still resident when the run finished.
    pub hot_final: u64,
    /// Sessions still paged out when the run finished.
    pub hibernated_final: u64,
}

impl ServeReport {
    /// Processed frames per wall-clock second.
    pub fn frames_per_sec(&self) -> f64 {
        self.frames_processed as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    /// Fraction of submitted frames that were shed.
    pub fn shed_rate(&self) -> f64 {
        if self.frames_in == 0 {
            0.0
        } else {
            self.shed as f64 / self.frames_in as f64
        }
    }

    /// Assembles the report into a metrics [`Registry`] — the same
    /// shape the live ops monitor snapshots, so a finished run can be
    /// serialized with [`mobisense_telemetry::Snapshot`] too.
    pub fn registry(&self) -> Registry {
        let mut reg = Registry::new();
        reg.counter("serve.frames_in").add(self.frames_in);
        reg.counter("serve.frames_processed")
            .add(self.frames_processed);
        reg.counter("serve.shed").add(self.shed);
        reg.counter("serve.decisions").add(self.decisions);
        reg.gauge("serve.shards").set(self.per_shard.len() as f64);
        reg.gauge("serve.wall_ns").set(self.wall.as_nanos() as f64);
        if self.latency_ns.count() > 0 {
            reg.histogram("serve.latency_ns", SPAN_NS_BUCKETS)
                .merge(&self.latency_ns);
        }
        if self.depth.count() > 0 {
            reg.histogram("serve.depth", DEPTH_BUCKETS)
                .merge(&self.depth);
        }
        self.stages.fill_registry(&mut reg);
        reg.counter("serve.sessions.hibernates")
            .add(self.sessions.hibernated);
        reg.counter("serve.sessions.restores")
            .add(self.sessions.restored);
        reg.counter("serve.sessions.evictions")
            .add(self.sessions.evicted);
        reg.counter("serve.sessions.migrations")
            .add(self.sessions.migrations);
        reg.gauge("serve.sessions.hot")
            .set(self.sessions.hot_final as f64);
        reg.gauge("serve.sessions.hibernated")
            .set(self.sessions.hibernated_final as f64);
        if self.fault_in_ns.count() > 0 {
            reg.histogram("serve.sessions.fault_in_ns", SPAN_NS_BUCKETS)
                .merge(&self.fault_in_ns);
        }
        if let Some(stats) = &self.recorder {
            reg.counter("serve.recorder.frames").add(stats.frames);
            reg.counter("serve.recorder.rows").add(stats.rows);
            reg.counter("serve.recorder.dropped").add(stats.dropped);
            reg.counter("serve.recorder.drained").add(stats.drained);
            reg.gauge("serve.recorder.max_depth")
                .set(stats.max_depth as f64);
        }
        reg
    }
}

fn mode_index(mode: MobilityMode) -> usize {
    match mode {
        MobilityMode::Static => 0,
        MobilityMode::Environmental => 1,
        MobilityMode::Micro => 2,
        MobilityMode::Macro => 3,
    }
}

/// One shard worker's client state.
struct ClientState {
    session: PipelineSession,
    /// Last classification emitted post-warm-up (warm-up decisions never
    /// update this, so the first settled state is always reported).
    last_emitted: Option<Classification>,
    /// Latest frame timestamp this session consumed (sim clock) — what
    /// a migration parcel carries so the target's LRU stays accurate.
    last_at: Nanos,
    /// Bytes currently charged to the resident-bytes gauge for this
    /// session (re-measured after every frame; sessions grow while
    /// their ToF history fills).
    bytes: usize,
}

struct WorkerResult {
    decisions: Vec<ServeDecision>,
    frames: u64,
    last_at: Nanos,
    latency_ns: Histogram,
    depth: Histogram,
    stages: StageHistograms,
    sessions: SessionsSummary,
    fault_in_ns: Histogram,
    session_events: Vec<Event>,
}

/// One shard worker's session-residency bookkeeping, split from the
/// frame loop so the lifecycle arms ([`WorkItem::Migrate`] /
/// [`WorkItem::Adopt`] / victim retirement) share one implementation.
struct WorkerSessions<'a> {
    cfg: &'a ServeConfig,
    shard: u32,
    map: BTreeMap<u32, ClientState>,
    manager: HibernationManager,
    pager: BoxedPager,
    gauges: Arc<SessionGauges>,
    resident_bytes: u64,
}

impl WorkerSessions<'_> {
    /// Faults the client's session back in if it is hibernated,
    /// recording the fault-in latency; no-op for hot or unknown
    /// clients. A failed fault-in (missing or corrupt page) panics the
    /// worker: serving a fresh session where a hibernated one exists
    /// would silently diverge the decision log, and the workspace's
    /// poison philosophy is that corrupt state fails the run loudly.
    fn fault_in_if_hibernated(&mut self, client: u32, at: Nanos, out: &mut WorkerResult) {
        if !self.manager.is_hibernated(client) {
            return;
        }
        // lint: determinism -- fault-in wall latency is telemetry only, never decisions
        let t0 = Instant::now();
        let snap = self
            .manager
            .fault_in(client, self.pager.as_mut())
            .expect("session fault-in failed: paged state unusable, refusing to diverge")
            .expect("hibernated client has a snapshot by manager invariant");
        let wait_ns = t0.elapsed().as_nanos() as u64;
        let state = ClientState {
            session: PipelineSession::restore(self.cfg.pipeline.clone(), snap.state),
            last_emitted: snap.last_emitted,
            last_at: at,
            bytes: 0,
        };
        self.map.insert(client, state);
        out.fault_in_ns.observe(wait_ns as f64);
        self.gauges
            .fault_in_ns
            .fetch_add(wait_ns, Ordering::Relaxed);
        if self.cfg.session_events {
            out.session_events.push(Event::SessionRestore {
                at,
                client_id: client,
                shard: self.shard,
                wait_ns,
            });
        }
    }

    /// Retires every victim the manager selects at sim time `now`:
    /// snapshot-and-page-out under [`RetirePolicy::Hibernate`], drop
    /// under [`RetirePolicy::Evict`]. Runs after every processed frame;
    /// cheap when nobody is due (one ordered-set probe).
    fn retire_victims(&mut self, now: Nanos, out: &mut WorkerResult) {
        if !self.cfg.hibernation.enabled() {
            return;
        }
        for victim in self.manager.victims(now) {
            let state = self
                .map
                .remove(&victim)
                .expect("victim selection tracks exactly the resident sessions");
            self.resident_bytes -= state.bytes as u64;
            match self.cfg.hibernation.policy {
                RetirePolicy::Hibernate => {
                    let snap = SessionSnapshot {
                        client_id: victim,
                        last_emitted: state.last_emitted,
                        state: state.session.snapshot(),
                    };
                    let bytes = self
                        .manager
                        .hibernate(&snap, self.pager.as_mut())
                        .expect("session page-out failed: cannot retire without losing state")
                        as u64;
                    if self.cfg.session_events {
                        out.session_events.push(Event::SessionHibernate {
                            at: now,
                            client_id: victim,
                            shard: self.shard,
                            bytes,
                        });
                    }
                }
                RetirePolicy::Evict => self.manager.evict(victim),
            }
        }
    }

    /// Extracts the client's full session as a [`MigrateParcel`] —
    /// resident, hibernated, or never-seen — and forgets it locally.
    fn extract_parcel(&mut self, client: u32) -> MigrateParcel {
        if let Some(state) = self.map.remove(&client) {
            self.resident_bytes -= state.bytes as u64;
            let snap = SessionSnapshot {
                client_id: client,
                last_emitted: state.last_emitted,
                state: state.session.snapshot(),
            };
            let bytes = snap
                .encode()
                .expect("migrating session failed to encode: state unusable");
            self.manager.forget(client);
            MigrateParcel {
                client_id: client,
                bytes: Some(bytes),
                last_at: state.last_at,
            }
        } else if self.manager.is_hibernated(client) {
            // The page transfers as-is: the target decodes (and so
            // CRC-checks) it at adoption.
            let bytes = self
                .pager
                .page_in(client)
                .expect("migrating session failed to page in")
                .expect("hibernated client has a snapshot by manager invariant");
            self.manager.forget(client);
            MigrateParcel {
                client_id: client,
                bytes: Some(bytes),
                last_at: 0,
            }
        } else {
            MigrateParcel {
                client_id: client,
                bytes: None,
                last_at: 0,
            }
        }
    }

    /// Restores a migrated session into this worker's client map.
    fn adopt(&mut self, parcel: MigrateParcel) {
        let MigrateParcel {
            client_id,
            bytes,
            last_at,
        } = parcel;
        let Some(bytes) = bytes else {
            return; // source had nothing: fresh session on next frame
        };
        let snap = SessionSnapshot::decode(&bytes)
            .expect("adopted session parcel failed to decode: transfer corrupted");
        assert_eq!(snap.client_id, client_id, "parcel/snapshot client mismatch");
        let session = PipelineSession::restore(self.cfg.pipeline.clone(), snap.state);
        let bytes_resident = session.approx_bytes();
        self.resident_bytes += bytes_resident as u64;
        let prev = self.map.insert(
            client_id,
            ClientState {
                session,
                last_emitted: snap.last_emitted,
                last_at,
                bytes: bytes_resident,
            },
        );
        assert!(
            prev.is_none(),
            "adopted client {client_id} already resident"
        );
        self.manager.touch(client_id, last_at);
    }

    /// Publishes the current residency picture to the shared gauges
    /// (absolute stores; this worker is the only writer).
    fn publish_gauges(&self) {
        let stats = self.manager.stats();
        self.gauges
            .hot
            .store(self.map.len() as u64, Ordering::Relaxed);
        self.gauges
            .hibernated
            .store(self.manager.hibernated_count() as u64, Ordering::Relaxed);
        self.gauges
            .resident_bytes
            .store(self.resident_bytes, Ordering::Relaxed);
        self.gauges
            .hibernates
            .store(stats.hibernated, Ordering::Relaxed);
        self.gauges
            .restores
            .store(stats.restored, Ordering::Relaxed);
        self.gauges
            .evictions
            .store(stats.evicted, Ordering::Relaxed);
    }
}

fn run_worker(
    queue: &ShardQueue,
    cfg: &ServeConfig,
    shard: u32,
    gauges: Arc<SessionGauges>,
    pager: BoxedPager,
) -> WorkerResult {
    // BTreeMap, not HashMap: per-client state is only keyed lookups
    // today, but the determinism contract bans seed-ordered iteration
    // from ever sneaking into this file.
    let mut ws = WorkerSessions {
        cfg,
        shard,
        map: BTreeMap::new(),
        manager: HibernationManager::new(cfg.hibernation.clone()),
        pager,
        gauges,
        resident_bytes: 0,
    };
    let mut out = WorkerResult {
        decisions: Vec::new(),
        frames: 0,
        last_at: 0,
        latency_ns: Histogram::with_buckets(SPAN_NS_BUCKETS),
        depth: Histogram::with_buckets(DEPTH_BUCKETS),
        stages: StageHistograms::new(),
        sessions: SessionsSummary::default(),
        fault_in_ns: Histogram::with_buckets(SPAN_NS_BUCKETS),
        session_events: Vec::new(),
    };
    let warmup = cfg.pipeline.warmup;
    while let Some((item, depth)) = queue.pop() {
        let (mut ticket, frame) = match item {
            WorkItem::Frame(ticket, frame) => (ticket, frame),
            WorkItem::Migrate { client_id, reply } => {
                let parcel = ws.extract_parcel(client_id);
                // lint: error-swallow -- a dropped receiver means the engine is already finishing; the parcel has nowhere to go
                let _ = reply.send(parcel);
                ws.publish_gauges();
                continue;
            }
            WorkItem::Adopt(parcel) => {
                ws.adopt(*parcel);
                ws.publish_gauges();
                continue;
            }
        };
        if let Some(trace) = ticket.trace.as_mut() {
            trace.mark(Stage::Dequeue);
        }
        out.depth.observe(depth as f64);
        out.frames += 1;
        out.last_at = out.last_at.max(frame.at);
        ws.fault_in_if_hibernated(frame.client_id, frame.at, &mut out);
        let state = ws
            .map
            .entry(frame.client_id)
            .or_insert_with(|| ClientState {
                session: PipelineSession::new(
                    cfg.pipeline.clone(),
                    cfg.session_seed_for(frame.client_id),
                ),
                last_emitted: None,
                last_at: 0,
                bytes: 0,
            });
        let decided = state.session.observe_profile_with(
            frame.at,
            frame.profile(),
            frame.distance_m,
            &mut NoopSink,
        );
        if let Some(trace) = ticket.trace.as_mut() {
            trace.mark(Stage::Classify);
        }
        if let Some(c) = decided {
            if frame.at >= warmup && state.last_emitted != Some(c) {
                state.last_emitted = Some(c);
                out.decisions.push(ServeDecision {
                    client_id: frame.client_id,
                    seq: frame.seq,
                    at: frame.at,
                    classification: c,
                    policy: MobilityPolicy::for_classification(c),
                });
            }
        }
        state.last_at = frame.at;
        // Re-measure the session's footprint (O(1): sizes, not walks)
        // and keep the running resident-bytes ledger exact.
        let now_bytes = state.session.approx_bytes();
        ws.resident_bytes = ws.resident_bytes - state.bytes as u64 + now_bytes as u64;
        state.bytes = now_bytes;
        ws.manager.touch(frame.client_id, frame.at);
        if let Some(trace) = ticket.trace.as_mut() {
            // One clock read stamps the `Decide` span and, when the
            // classifier emitted, the end-to-end decision latency — the
            // traced path pays no read the untraced path doesn't.
            // lint: determinism -- wall-clock latency telemetry only, never decisions
            let now = Instant::now();
            trace.mark_at(Stage::Decide, now);
            out.stages.observe_trace(trace);
            if decided.is_some() {
                out.latency_ns
                    .observe(now.saturating_duration_since(ticket.ingested).as_nanos() as f64);
            }
        } else if decided.is_some() {
            out.latency_ns
                .observe(ticket.ingested.elapsed().as_nanos() as f64);
        }
        // Retirement runs on the sim clock of the frame just served, so
        // victim choice replays identically run over run.
        ws.retire_victims(frame.at, &mut out);
        ws.publish_gauges();
    }
    let stats = ws.manager.stats();
    out.sessions.hibernated = stats.hibernated;
    out.sessions.restored = stats.restored;
    out.sessions.evicted = stats.evicted;
    out.sessions.hot_final = ws.map.len() as u64;
    out.sessions.hibernated_final = ws.manager.hibernated_count() as u64;
    out
}

/// Pumps one shard's client streams into its queue, time-major (frame
/// `i` of every client before frame `i + 1` of any), which preserves
/// each client's sequence order and interleaves clients fairly. Frames
/// are decoded through the wire codec on the way in — the replay path
/// exercises exactly the parser an ingest socket would.
/// When a recorder is attached, each frame's wire encoding is teed to
/// it before the push — so the recording channel sees frames in the
/// same per-client order the shard consumes them, which is what makes
/// a lossless recording replay byte-identically.
fn run_producer(
    queue: &ShardQueue,
    clients: &[&ClientStream],
    overflow: OverflowPolicy,
    recorder: Option<&RecorderHandle>,
    stage_sampling: u32,
) -> u64 {
    let max_frames = clients.iter().map(|s| s.n_frames).max().unwrap_or(0);
    let mut submitted = 0u64;
    let mut sampler = Sampler::every(stage_sampling);
    for i in 0..max_frames {
        for stream in clients {
            if i >= stream.n_frames {
                continue;
            }
            // The ingest wall-clock stamp (inside the ticket) feeds
            // latency telemetry only, never decisions; a sampled ticket
            // additionally carries a stage trace started at `Ingest`.
            let mut ticket = if sampler.sample() {
                Ticket::traced()
            } else {
                Ticket::untraced()
            };
            if let Some(rec) = recorder {
                rec.record_frame(stream.frame(i));
                if let Some(trace) = ticket.trace.as_mut() {
                    trace.mark(Stage::Record);
                }
            }
            queue.push(WorkItem::frame(ticket, stream.obs(i)), overflow);
            submitted += 1;
        }
    }
    queue.close();
    submitted
}

/// The decode-side half of a serving run, shared by every frontend:
/// per-shard bounded queues plus one owned worker thread each.
///
/// [`serve_streams`]' in-process producers and `mobisense-edge`'s
/// socket reactor both feed the same engine through
/// [`ShardEngine::submit`] (or by pushing to [`ShardEngine::queues`]
/// directly), so a frame ingested over a socket runs through exactly
/// the worker, session map and decision path a replayed frame does —
/// which is what makes a socket-fed decision log comparable
/// byte-for-byte to the golden in-process log.
pub struct ShardEngine {
    queues: Vec<Arc<ShardQueue>>,
    workers: Vec<std::thread::JoinHandle<WorkerResult>>,
    overflow: OverflowPolicy,
    stage_sampling: u32,
    started: Instant,
    /// Per-client shard overrides installed by [`migrate`]
    /// (`Self::migrate`); clients not present route by [`shard_of`].
    /// Read on every submit, written once per migration.
    routes: RwLock<BTreeMap<u32, usize>>,
    /// Per-shard session-residency gauges, written by each worker.
    session_gauges: Vec<Arc<SessionGauges>>,
    migrations: AtomicU64,
    /// One [`Event::SessionMigrate`] per completed migration, replayed
    /// into the report at [`finish`](Self::finish).
    migrate_log: Mutex<Vec<Event>>,
}

impl ShardEngine {
    /// Spawns `cfg.n_shards` queues and worker threads with in-memory
    /// snapshot pagers. Errs only when the OS refuses a thread.
    pub fn spawn(cfg: &ServeConfig) -> std::io::Result<ShardEngine> {
        let pagers = (0..cfg.n_shards)
            .map(|_| Box::new(MemoryPager::new()) as BoxedPager)
            .collect();
        Self::spawn_with_pagers(cfg, pagers)
    }

    /// [`ShardEngine::spawn`] with one caller-supplied
    /// [`SnapshotPager`] per shard — how the trace store's disk-backed
    /// pager slots in. `pagers.len()` must equal `cfg.n_shards`.
    pub fn spawn_with_pagers(
        cfg: &ServeConfig,
        pagers: Vec<BoxedPager>,
    ) -> std::io::Result<ShardEngine> {
        assert!(cfg.n_shards > 0, "need at least one shard");
        assert_eq!(pagers.len(), cfg.n_shards, "one pager per shard");
        // lint: determinism -- run wall clock feeds the serve report only, never decisions
        let started = Instant::now();
        let queues: Vec<Arc<ShardQueue>> = (0..cfg.n_shards)
            .map(|_| Arc::new(ShardQueue::new(cfg.queue_capacity)))
            .collect();
        let session_gauges: Vec<Arc<SessionGauges>> = (0..cfg.n_shards)
            .map(|_| Arc::new(SessionGauges::new()))
            .collect();
        let workers = queues
            .iter()
            .zip(pagers)
            .enumerate()
            .map(|(i, (q, pager))| {
                let q = Arc::clone(q);
                let cfg = cfg.clone();
                let gauges = Arc::clone(&session_gauges[i]);
                std::thread::Builder::new()
                    .name(format!("shard-worker-{i}"))
                    .spawn(move || run_worker(&q, &cfg, i as u32, gauges, pager))
            })
            .collect::<std::io::Result<Vec<_>>>()?;
        Ok(ShardEngine {
            queues,
            workers,
            overflow: cfg.overflow,
            stage_sampling: cfg.stage_sampling,
            started,
            routes: RwLock::new(BTreeMap::new()),
            session_gauges,
            migrations: AtomicU64::new(0),
            migrate_log: Mutex::new(Vec::new()),
        })
    }

    /// The engine's shard count.
    pub fn n_shards(&self) -> usize {
        self.queues.len()
    }

    /// The per-shard queues, index = shard (for frontends that pump
    /// whole per-shard batches, like the in-process producers).
    ///
    /// Note: pushing here directly bypasses any [`migrate`]
    /// (`Self::migrate`) route overrides — batch frontends that never
    /// migrate may do so; anything else should go through
    /// [`submit`](Self::submit).
    pub fn queues(&self) -> &[Arc<ShardQueue>] {
        &self.queues
    }

    /// The per-shard session-residency gauges (hot / hibernated /
    /// resident bytes / lifecycle counters), index = shard. Wrap them
    /// in a [`SessionOpsSource`] to ride the ops snapshot stream.
    pub fn session_gauges(&self) -> &[Arc<SessionGauges>] {
        &self.session_gauges
    }

    /// The shard a client's frames currently route to: the hash route,
    /// unless a migration moved it.
    pub fn route_of(&self, client_id: u32) -> usize {
        let routes = self.routes.read().unwrap_or_else(|e| e.into_inner());
        routes
            .get(&client_id)
            .copied()
            .unwrap_or_else(|| shard_of(client_id, self.queues.len()))
    }

    /// Routes one decoded frame to its shard's queue under the engine's
    /// overflow policy. Returns the number of frames shed to make room
    /// (always 0 under [`OverflowPolicy::Block`]).
    pub fn submit(&self, ticket: Ticket, frame: ObsFrame) -> u64 {
        let shard = self.route_of(frame.client_id);
        self.queues[shard].push(WorkItem::frame(ticket, frame), self.overflow)
    }

    /// Live-migrates one client's session to `to_shard`:
    /// drain → snapshot → transfer → resume. A [`WorkItem::Migrate`]
    /// marker FIFO-drains every frame already queued for the client at
    /// its current shard, the extracted parcel crosses over, a
    /// [`WorkItem::Adopt`] lands ahead of anything the new shard will
    /// receive for it, and the route flips — so the session consumes
    /// exactly the same frame sequence it would have unmigrated, and
    /// the decision log cannot diverge.
    ///
    /// Must be called from the thread that also calls
    /// [`submit`](Self::submit) (the single-submitter contract): the
    /// call blocks until the source worker hands the session over, and
    /// no frame for the client may be submitted while it is in flight.
    ///
    /// Returns the transferred snapshot size in bytes (0 when the
    /// client had no session anywhere, or was already on `to_shard`).
    pub fn migrate(&self, client_id: u32, to_shard: usize) -> std::io::Result<usize> {
        assert!(to_shard < self.queues.len(), "target shard out of range");
        let from_shard = self.route_of(client_id);
        if from_shard == to_shard {
            return Ok(0);
        }
        let (tx, rx) = mpsc::channel();
        if !self.queues[from_shard].push_control(WorkItem::Migrate {
            client_id,
            reply: tx,
        }) {
            return Err(std::io::Error::other(format!(
                "source shard {from_shard} already closed"
            )));
        }
        let parcel = rx.recv().map_err(|_| {
            std::io::Error::other(format!(
                "source shard {from_shard} worker gone before handing over client {client_id}"
            ))
        })?;
        let bytes = parcel.bytes.as_ref().map_or(0, Vec::len);
        let last_at = parcel.last_at;
        if !self.queues[to_shard].push_control(WorkItem::Adopt(Box::new(parcel))) {
            return Err(std::io::Error::other(format!(
                "target shard {to_shard} already closed"
            )));
        }
        let mut routes = self.routes.write().unwrap_or_else(|e| e.into_inner());
        routes.insert(client_id, to_shard);
        drop(routes);
        self.migrations.fetch_add(1, Ordering::Relaxed);
        let mut log = self.migrate_log.lock().unwrap_or_else(|e| e.into_inner());
        log.push(Event::SessionMigrate {
            at: last_at,
            client_id,
            from_shard: from_shard as u32,
            to_shard: to_shard as u32,
            bytes: bytes as u64,
        });
        Ok(bytes)
    }

    /// Closes every queue, joins the workers and assembles the run's
    /// merged decision log (sorted by `(client_id, seq)`) and report.
    /// `frames_in` is the frontend's count of submitted frames (shed
    /// frames included); the caller fills the report fields only it
    /// knows (snapshots, stalls, recorder counters).
    pub fn finish(self, frames_in: u64) -> (Vec<ServeDecision>, ServeReport) {
        for q in &self.queues {
            q.close();
        }
        let results: Vec<WorkerResult> = self
            .workers
            .into_iter()
            .map(|w| w.join().expect("worker panicked")) // lint: hot-path -- shutdown join: queues are closed, workers drain and exit
            .collect();
        let mut decisions: Vec<ServeDecision> = Vec::new();
        let mut report = ServeReport {
            frames_in,
            frames_processed: 0,
            shed: 0,
            decisions: 0,
            per_mode: [0; 4],
            latency_ns: Histogram::with_buckets(SPAN_NS_BUCKETS),
            depth: Histogram::with_buckets(DEPTH_BUCKETS),
            stages: StageHistograms::new(),
            per_stage_shard: Vec::new(),
            per_shard: Vec::with_capacity(self.queues.len()),
            snapshots: Vec::new(),
            stalls: Vec::new(),
            recorder: None,
            sessions: SessionsSummary {
                migrations: self.migrations.load(Ordering::Relaxed),
                ..SessionsSummary::default()
            },
            fault_in_ns: Histogram::with_buckets(SPAN_NS_BUCKETS),
            session_events: Vec::new(),
            wall: self.started.elapsed(),
        };
        for (shard, (result, queue)) in results.iter().zip(&self.queues).enumerate() {
            report.frames_processed += result.frames;
            report.shed += queue.shed();
            report.latency_ns.merge(&result.latency_ns);
            report.depth.merge(&result.depth);
            report.sessions.hibernated += result.sessions.hibernated;
            report.sessions.restored += result.sessions.restored;
            report.sessions.evicted += result.sessions.evicted;
            report.sessions.hot_final += result.sessions.hot_final;
            report.sessions.hibernated_final += result.sessions.hibernated_final;
            report.fault_in_ns.merge(&result.fault_in_ns);
            report
                .session_events
                .extend(result.session_events.iter().cloned());
            if self.stage_sampling > 0 {
                report.stages.merge(&result.stages);
                report.per_stage_shard.push(result.stages.clone());
            }
            report.per_shard.push(ShardSummary {
                shard: shard as u32,
                frames: result.frames,
                decisions: result.decisions.len() as u64,
                shed: queue.shed(),
                max_depth: queue.max_depth() as u64,
                last_at: result.last_at,
            });
            decisions.extend_from_slice(&result.decisions);
        }
        let migrate_events = self
            .migrate_log
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone();
        report.session_events.extend(migrate_events);
        decisions.sort_by_key(|d| (d.client_id, d.seq));
        report.decisions = decisions.len() as u64;
        for d in &decisions {
            report.per_mode[mode_index(d.classification.mode)] += 1;
        }
        (decisions, report)
    }
}

/// Emits the standard end-of-run telemetry for a serve report: one
/// [`Event::ServeShard`] per shard, one [`Event::Snapshot`] per ops
/// tick, one [`Event::Stall`] per watchdog flag, and the `serve.run`
/// wall-clock span. Shared by the in-process service and the socket
/// edge so both run shapes trace identically.
pub fn emit_report_events<S: Sink + ?Sized>(
    report: &ServeReport,
    ops_meta: &[SnapshotMeta],
    sink: &mut S,
) {
    if !sink.enabled() {
        return;
    }
    for s in &report.per_shard {
        sink.record(Event::ServeShard {
            at: s.last_at,
            shard: s.shard,
            frames: s.frames,
            decisions: s.decisions,
            shed: s.shed,
            max_depth: s.max_depth,
        });
    }
    // Ops events are wall-clock phenomena with no sim timestamp;
    // `at` is 0 by convention (documented on the variants).
    for m in ops_meta {
        sink.record(Event::Snapshot {
            at: 0,
            seq: m.seq,
            metrics: m.metrics,
            bytes: m.bytes,
        });
    }
    for stall in &report.stalls {
        sink.record(Event::Stall {
            at: 0,
            source: stall.source.clone(),
            intervals: stall.intervals,
            backlog: stall.backlog,
        });
    }
    // Session lifecycle events were buffered per worker during the run
    // (workers own no sink); replay them now, in shard order then
    // migrations.
    for event in &report.session_events {
        sink.record(event.clone());
    }
    sink.span_ns("serve.run", report.wall.as_nanos() as u64);
}

/// Serves a whole fleet: spawns one producer and one worker per shard,
/// waits for every stream to drain, and returns the merged decision log
/// (sorted by client id, then sequence) plus the run report.
///
/// Telemetry lands in `sink` after the threads join: one
/// [`Event::ServeShard`] per shard and a `serve.run` wall-clock span.
pub fn serve_fleet<S: Sink + ?Sized>(
    cfg: &ServeConfig,
    fleet: &EncodedFleet,
    sink: &mut S,
) -> (Vec<ServeDecision>, ServeReport) {
    serve_streams(cfg, &fleet.streams, sink)
}

/// Serves a bare set of client streams — the entry point replay takes
/// when streams were rebuilt from a recorded trace rather than
/// generated as a fleet. [`serve_fleet`] is this with a fleet's
/// streams; the determinism contract is identical.
pub fn serve_streams<S: Sink + ?Sized>(
    cfg: &ServeConfig,
    streams: &[ClientStream],
    sink: &mut S,
) -> (Vec<ServeDecision>, ServeReport) {
    serve_streams_inner(cfg, streams, None, sink)
}

/// [`serve_streams`] with the flight recorder attached: every frame's
/// wire encoding is teed onto `recorder`'s channel as its producer
/// submits it, and after the run the golden decision log (every CSV
/// line of [`decision_log_csv`], header included — matching the
/// store's `record_fleet` layout) is appended as decision rows.
///
/// Under [`crate::recording::RecordPolicy::Block`] the recording is
/// lossless, so replaying the resulting store reproduces this run's
/// decision log byte-for-byte; under `DropNewest` serving never waits
/// on the recorder and the drop counter says what the trace is
/// missing. Emits one [`Event::ServeRecorder`] with the channel
/// counters alongside the usual per-shard events.
pub fn serve_streams_recorded<S: Sink + ?Sized>(
    cfg: &ServeConfig,
    streams: &[ClientStream],
    recorder: &RecorderHandle,
    sink: &mut S,
) -> (Vec<ServeDecision>, ServeReport) {
    let (decisions, mut report) = serve_streams_inner(cfg, streams, Some(recorder), sink);
    for line in decision_log_csv(&decisions).lines() {
        recorder.record_row(line);
    }
    report.recorder = Some(recorder.stats());
    if sink.enabled() {
        let stats = recorder.stats();
        let at = report
            .per_shard
            .iter()
            .map(|s| s.last_at)
            .max()
            .unwrap_or(0);
        sink.record(Event::ServeRecorder {
            at,
            frames: stats.frames,
            rows: stats.rows,
            dropped: stats.dropped,
            max_depth: stats.max_depth,
        });
    }
    (decisions, report)
}

fn serve_streams_inner<S: Sink + ?Sized>(
    cfg: &ServeConfig,
    streams: &[ClientStream],
    recorder: Option<&RecorderHandle>,
    sink: &mut S,
) -> (Vec<ServeDecision>, ServeReport) {
    let engine = ShardEngine::spawn(cfg).expect("shard workers spawn");
    let mut by_shard: Vec<Vec<&ClientStream>> = vec![Vec::new(); cfg.n_shards];
    for stream in streams {
        by_shard[shard_of(stream.client_id, cfg.n_shards)].push(stream);
    }

    // The ops monitor observes the run from outside the frame path; it
    // is spawned before the workers and stopped (with one final tick)
    // after they drain, so its snapshots bracket the whole run.
    let monitor = cfg.snapshot.map(|policy| {
        let sessions = SessionOpsSource::new(engine.session_gauges().to_vec());
        OpsMonitor::spawn_with_sources(
            engine.queues().to_vec(),
            recorder.cloned(),
            vec![Box::new(sessions)],
            policy,
        )
        .expect("ops monitor spawn")
    });

    let mut frames_in = 0u64;
    std::thread::scope(|scope| {
        let producers: Vec<_> = engine
            .queues()
            .iter()
            .zip(&by_shard)
            .map(|(q, clients)| {
                let q = Arc::clone(q);
                let clients: &[&ClientStream] = clients;
                scope.spawn(move || {
                    run_producer(&q, clients, cfg.overflow, recorder, cfg.stage_sampling)
                })
            })
            .collect();
        for p in producers {
            frames_in += p.join().expect("producer panicked");
        }
    });
    let (decisions, mut report) = engine.finish(frames_in);
    let ops: OpsOutcome = monitor.map(OpsMonitor::stop).unwrap_or_default();
    report.snapshots = ops.snapshots;
    report.stalls = ops.stalls;
    report.recorder = recorder.map(RecorderHandle::stats);

    emit_report_events(&report, &ops.meta, sink);
    (decisions, report)
}

/// Renders a decision log as canonical CSV — the byte string the
/// determinism tests compare across shard counts.
pub fn decision_log_csv(decisions: &[ServeDecision]) -> String {
    let mut out = String::from(
        "client_id,seq,at_ns,mode,direction,roam,probe_ns,retries,agg_ns,bf_ns,mu_ns\n",
    );
    for d in decisions {
        let dir = match d.classification.direction {
            Some(Direction::Towards) => "towards",
            Some(Direction::Away) => "away",
            None => "-",
        };
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{},{}\n",
            d.client_id,
            d.seq,
            d.at,
            d.classification.mode.label(),
            dir,
            u8::from(d.policy.encourage_roaming),
            d.policy.probe_interval,
            d.policy.rate_retries,
            d.policy.aggregation_limit,
            d.policy.bf_feedback_period,
            d.policy.mu_mimo_feedback_period,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::FleetConfig;
    use mobisense_util::units::{MILLISECOND, SECOND};

    fn small_fleet() -> EncodedFleet {
        EncodedFleet::generate(&FleetConfig {
            n_clients: 8,
            duration: 9 * SECOND,
            step: 50 * MILLISECOND,
            base_seed: 11,
            gen_threads: 2,
            ..FleetConfig::default()
        })
    }

    #[test]
    fn serves_every_frame_and_emits_decisions() {
        let fleet = small_fleet();
        let cfg = ServeConfig::default();
        let (decisions, report) = serve_fleet(&cfg, &fleet, &mut NoopSink);
        assert_eq!(report.frames_in, fleet.total_frames());
        assert_eq!(report.frames_processed, fleet.total_frames());
        assert_eq!(report.shed, 0, "blocking mode never sheds");
        assert!(!decisions.is_empty(), "fleet produced no decisions");
        assert_eq!(report.decisions as usize, decisions.len());
        assert_eq!(report.per_mode.iter().sum::<u64>(), report.decisions);
        // Every client settles into at least one post-warm-up state.
        let clients: std::collections::BTreeSet<u32> =
            decisions.iter().map(|d| d.client_id).collect();
        assert_eq!(clients.len(), 8, "all clients decided: {clients:?}");
        // Decision latency was measured for at least every emitted one.
        assert!(report.latency_ns.count() >= report.decisions);
        assert_eq!(report.depth.count(), report.frames_processed);
    }

    #[test]
    fn decision_log_is_shard_count_invariant() {
        let fleet = small_fleet();
        let mut logs = Vec::new();
        for n_shards in [1usize, 2, 8] {
            let cfg = ServeConfig {
                n_shards,
                ..ServeConfig::default()
            };
            let (decisions, report) = serve_fleet(&cfg, &fleet, &mut NoopSink);
            assert_eq!(report.per_shard.len(), n_shards);
            logs.push(decision_log_csv(&decisions));
        }
        assert_eq!(logs[0], logs[1], "1 vs 2 shards");
        assert_eq!(logs[0], logs[2], "1 vs 8 shards");
    }

    #[test]
    fn sorted_log_and_policies_are_consistent() {
        let fleet = small_fleet();
        let (decisions, _) = serve_fleet(&ServeConfig::default(), &fleet, &mut NoopSink);
        assert!(
            decisions
                .windows(2)
                .all(|w| (w[0].client_id, w[0].seq) < (w[1].client_id, w[1].seq)),
            "log sorted by (client, seq)"
        );
        for d in &decisions {
            assert!(d.at >= PipelineConfig::default().warmup);
            assert_eq!(
                d.policy,
                MobilityPolicy::for_classification(d.classification)
            );
        }
        // Consecutive decisions of one client differ (transitions only).
        for w in decisions.windows(2) {
            if w[0].client_id == w[1].client_id {
                assert_ne!(w[0].classification, w[1].classification);
            }
        }
    }

    #[test]
    fn shard_events_and_span_reach_the_sink() {
        let fleet = small_fleet();
        let mut tel = mobisense_telemetry::Telemetry::new();
        let cfg = ServeConfig {
            n_shards: 2,
            ..ServeConfig::default()
        };
        let (_, report) = serve_fleet(&cfg, &fleet, &mut tel);
        let shard_events: Vec<_> = tel
            .events()
            .filter(|e| matches!(e, Event::ServeShard { .. }))
            .collect();
        assert_eq!(shard_events.len(), 2);
        let total: u64 = report.per_shard.iter().map(|s| s.frames).sum();
        assert_eq!(total, report.frames_processed);
        let (count, mean_ns) = tel
            .registry
            .histogram_snapshot("serve.run")
            .expect("span recorded");
        assert_eq!(count, 1);
        assert!(mean_ns > 0.0);
    }

    #[test]
    fn overload_sheds_and_conserves_frames() {
        let fleet = small_fleet();
        // A tiny queue under an 8-client burst: whatever the scheduler
        // does, frame conservation must hold exactly.
        let cfg = ServeConfig {
            n_shards: 1,
            queue_capacity: 4,
            overflow: OverflowPolicy::ShedOldestPerClient,
            ..ServeConfig::default()
        };
        let (_, report) = serve_fleet(&cfg, &fleet, &mut NoopSink);
        assert_eq!(
            report.frames_in,
            report.frames_processed + report.shed,
            "every submitted frame is processed or shed"
        );
        assert!(report.shed_rate() <= 1.0);
    }

    #[test]
    fn stage_tracing_changes_no_decision_and_fills_histograms() {
        let fleet = small_fleet();
        let plain = ServeConfig::default();
        let traced = ServeConfig {
            stage_sampling: 4,
            ..ServeConfig::default()
        };
        let (d_plain, r_plain) = serve_fleet(&plain, &fleet, &mut NoopSink);
        let (d_traced, r_traced) = serve_fleet(&traced, &fleet, &mut NoopSink);
        // Tracing is telemetry-only: the decision log stays byte-identical.
        assert_eq!(
            decision_log_csv(&d_plain),
            decision_log_csv(&d_traced),
            "tracing must not perturb decisions"
        );
        assert_eq!(r_plain.stages.traces(), 0);
        let expected = fleet.total_frames() / 4;
        let traces = r_traced.stages.traces();
        // Each producer samples every 4th of its own submissions, so
        // the total is within one frame per producer of the ideal.
        assert!(
            traces >= expected.saturating_sub(traced.n_shards as u64) && traces <= expected + 1,
            "sampled ~1 in 4: {traces} vs {expected}"
        );
        assert_eq!(r_traced.per_stage_shard.len(), traced.n_shards);
        // Every traced frame passed enqueue, dequeue, classify, decide.
        for stage in [
            Stage::Enqueue,
            Stage::Dequeue,
            Stage::Classify,
            Stage::Decide,
        ] {
            assert_eq!(r_traced.stages.get(stage).count(), traces, "{stage:?}");
        }
        // No recorder attached, so the record stage never fired.
        assert_eq!(r_traced.stages.get(Stage::Record).count(), 0);
    }

    #[test]
    fn snapshot_monitor_reports_and_emits_events() {
        let fleet = small_fleet();
        let mut tel = mobisense_telemetry::Telemetry::new();
        let cfg = ServeConfig {
            stage_sampling: 8,
            snapshot: Some(SnapshotPolicy {
                interval: std::time::Duration::from_millis(5),
                stall_intervals: 2,
            }),
            ..ServeConfig::default()
        };
        let (_, report) = serve_fleet(&cfg, &fleet, &mut tel);
        // The monitor's final tick guarantees at least one snapshot
        // even on a fast run.
        assert!(!report.snapshots.is_empty());
        let snaps = mobisense_telemetry::parse_snapshots(&report.snapshots.concat())
            .expect("snapshots parse");
        assert_eq!(snaps.len(), report.snapshots.len());
        let snap_events = tel
            .events()
            .filter(|e| matches!(e, Event::Snapshot { .. }))
            .count();
        assert_eq!(snap_events, report.snapshots.len());
        // A healthy drain never stalls.
        assert!(report.stalls.is_empty(), "stalls: {:?}", report.stalls);
        assert!(!tel.events().any(|e| matches!(e, Event::Stall { .. })));
        // The report assembles into a registry with the stage hists.
        let reg = report.registry();
        assert_eq!(
            reg.counter_value("serve.frames_processed"),
            Some(report.frames_processed)
        );
        assert!(reg.histogram_snapshot("stage.total").is_some());
    }

    #[test]
    fn hibernation_is_invisible_in_the_decision_log() {
        let fleet = small_fleet();
        let base = ServeConfig::default();
        // An aggressively small idle threshold + hot-set cap: with the
        // time-major pump every client thrashes through hibernate /
        // fault-in constantly, the worst case for the invariant.
        let hib = ServeConfig {
            hibernation: HibernationConfig {
                idle_after: Some(25 * MILLISECOND),
                max_hot: Some(2),
                policy: RetirePolicy::Hibernate,
            },
            session_events: true,
            ..ServeConfig::default()
        };
        let (d_base, r_base) = serve_fleet(&base, &fleet, &mut NoopSink);
        let (d_hib, r_hib) = serve_fleet(&hib, &fleet, &mut NoopSink);
        assert_eq!(
            decision_log_csv(&d_base),
            decision_log_csv(&d_hib),
            "hibernate → restore must be invisible in the decision log"
        );
        // Hibernation off: no lifecycle transitions, all 8 resident.
        assert_eq!(
            r_base.sessions,
            SessionsSummary {
                hot_final: 8,
                ..SessionsSummary::default()
            }
        );
        assert!(r_hib.sessions.hibernated > 0, "{:?}", r_hib.sessions);
        assert!(r_hib.sessions.restored > 0);
        assert_eq!(r_hib.sessions.evicted, 0);
        assert_eq!(r_hib.fault_in_ns.count(), r_hib.sessions.restored);
        assert_eq!(
            r_hib
                .session_events
                .iter()
                .filter(|e| matches!(e, Event::SessionHibernate { .. }))
                .count() as u64,
            r_hib.sessions.hibernated
        );
        assert_eq!(
            r_hib
                .session_events
                .iter()
                .filter(|e| matches!(e, Event::SessionRestore { .. }))
                .count() as u64,
            r_hib.sessions.restored
        );
        // Every client ends the run either resident or paged out.
        assert_eq!(
            r_hib.sessions.hot_final + r_hib.sessions.hibernated_final,
            8
        );
        // The registry carries the lifecycle counters.
        let reg = r_hib.registry();
        assert_eq!(
            reg.counter_value("serve.sessions.hibernates"),
            Some(r_hib.sessions.hibernated)
        );
        assert!(reg
            .histogram_snapshot("serve.sessions.fault_in_ns")
            .is_some());
    }

    #[test]
    fn idle_eviction_hook_drops_sessions_without_snapshots() {
        let fleet = small_fleet();
        let cfg = ServeConfig {
            hibernation: HibernationConfig {
                idle_after: Some(25 * MILLISECOND),
                max_hot: None,
                policy: RetirePolicy::Evict,
            },
            ..ServeConfig::default()
        };
        let (_, report) = serve_fleet(&cfg, &fleet, &mut NoopSink);
        assert!(report.sessions.evicted > 0);
        assert_eq!(report.sessions.hibernated, 0);
        assert_eq!(report.sessions.restored, 0);
        assert_eq!(report.sessions.hibernated_final, 0);
    }

    #[test]
    fn live_migration_preserves_decisions_and_conserves_frames() {
        let fleet = small_fleet();
        let (golden, _) = serve_fleet(&ServeConfig::default(), &fleet, &mut NoopSink);

        // A manual single-submitter frontend (the contract migrate()
        // requires), moving one client to the other shard mid-stream.
        let cfg = ServeConfig::default();
        let engine = ShardEngine::spawn(&cfg).expect("engine spawns");
        let max_frames = fleet.streams.iter().map(|s| s.n_frames).max().unwrap_or(0);
        let mut frames = Vec::new();
        for i in 0..max_frames {
            for s in &fleet.streams {
                if i < s.n_frames {
                    frames.push(s.obs(i));
                }
            }
        }
        let victim = fleet.streams[0].client_id;
        let mid = frames.len() / 2;
        let mut submitted = 0u64;
        for (k, frame) in frames.into_iter().enumerate() {
            if k == mid {
                let from = engine.route_of(victim);
                let to = (from + 1) % engine.n_shards();
                let bytes = engine.migrate(victim, to).expect("migration completes");
                assert!(bytes > 0, "mid-run session has state to move");
                assert_eq!(engine.route_of(victim), to);
                // Migrating to the current shard is a free no-op.
                assert_eq!(engine.migrate(victim, to).expect("no-op"), 0);
            }
            engine.submit(Ticket::untraced(), frame);
            submitted += 1;
        }
        let (decisions, report) = engine.finish(submitted);
        assert_eq!(
            decision_log_csv(&decisions),
            decision_log_csv(&golden),
            "migration must be invisible in the decision log"
        );
        assert_eq!(report.sessions.migrations, 1);
        assert_eq!(report.frames_in, report.frames_processed + report.shed);
        assert!(report
            .session_events
            .iter()
            .any(|e| matches!(e, Event::SessionMigrate { .. })));
        let reg = report.registry();
        assert_eq!(reg.counter_value("serve.sessions.migrations"), Some(1));
    }

    #[test]
    fn csv_log_has_header_and_one_row_per_decision() {
        let fleet = small_fleet();
        let (decisions, _) = serve_fleet(&ServeConfig::default(), &fleet, &mut NoopSink);
        let csv = decision_log_csv(&decisions);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), decisions.len() + 1);
        assert!(lines[0].starts_with("client_id,seq,at_ns,mode"));
        assert!(lines[1].split(',').count() == 11);
    }
}
