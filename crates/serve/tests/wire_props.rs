//! Property tests for the observation-frame wire codec: lossless
//! round-tripping of arbitrary frames, totality of the parser over
//! truncated and corrupted input, and stream-level framing.

use mobisense_serve::wire::{decode_stream, ObsFrame, WireError, HEADER_LEN};
use proptest::prelude::*;
use proptest::strategy::StrategyExt;

/// Any well-formed frame the codec must carry losslessly. Digest values
/// span a wide finite range (magnitudes are non-negative in practice,
/// but the codec must not care).
fn frame_strategy() -> impl Strategy<Value = ObsFrame> {
    (
        ((0u32..u32::MAX, 0u32..u32::MAX), 0u64..u64::MAX),
        (
            -1e9..1e9f64,
            prop::collection::vec((-1e30..1e30f64).prop_map(|v| v as f32), 1..256),
        ),
    )
        .prop_map(|(((client_id, seq), at), (distance_m, digest))| ObsFrame {
            client_id,
            seq,
            at,
            distance_m,
            digest,
        })
}

proptest! {
    #[test]
    fn encode_decode_round_trips_exactly(frame in frame_strategy()) {
        let bytes = frame.encode();
        prop_assert_eq!(bytes.len(), frame.encoded_len());
        let (back, used) = ObsFrame::decode(&bytes).expect("well-formed frame decodes");
        prop_assert_eq!(used, bytes.len());
        prop_assert_eq!(back, frame);
    }

    #[test]
    fn any_truncation_is_rejected_without_panic(
        frame in frame_strategy(),
        cut_frac in 0.0..1.0f64,
    ) {
        let bytes = frame.encode();
        // Any strictly-proper prefix must yield Truncated — never a
        // panic, never a bogus frame.
        let cut = ((bytes.len() as f64 * cut_frac) as usize).min(bytes.len() - 1);
        let err = ObsFrame::decode(&bytes[..cut]).expect_err("prefix must not decode");
        prop_assert!(
            matches!(err, WireError::Truncated { .. }),
            "cut {}: {}", cut, err
        );
    }

    #[test]
    fn corrupt_header_bytes_never_panic_and_errors_are_typed(
        frame in frame_strategy(),
        flip in (0usize..HEADER_LEN, 1u8..255),
    ) {
        let (flip_at, flip_mask) = flip;
        let mut bytes = frame.encode();
        bytes[flip_at] ^= flip_mask;
        // Decoding either still succeeds (the flip hit a value field) or
        // fails with a typed error; it must never panic.
        match ObsFrame::decode(&bytes) {
            Ok((back, _)) => {
                // Success implies the magic and version survived, and the
                // digest length matches whatever the length byte now says.
                prop_assert_eq!(back.digest.len(), bytes[3] as usize);
            }
            Err(
                WireError::Truncated { .. }
                | WireError::BadMagic(_)
                | WireError::BadVersion(_)
                | WireError::EmptyDigest,
            ) => {}
        }
    }

    #[test]
    fn arbitrary_garbage_decodes_totally(
        garbage in prop::collection::vec(0usize..256, 0..600),
    ) {
        let garbage: Vec<u8> = garbage.into_iter().map(|b| b as u8).collect();
        // Total parser: any byte soup yields Ok or a typed error.
        if let Ok((f, used)) = ObsFrame::decode(&garbage) {
            // Success implies the soup really did start with a
            // well-formed header ("MS" little-endian = 0x53, 0x4D).
            prop_assert!(used <= garbage.len());
            prop_assert_eq!(garbage[0], 0x53);
            prop_assert_eq!(garbage[1], 0x4D);
            prop_assert!(!f.digest.is_empty());
        }
    }

    #[test]
    fn streams_round_trip_in_order(
        frames in prop::collection::vec(frame_strategy(), 1..12),
    ) {
        let mut bytes = Vec::new();
        for f in &frames {
            f.encode_into(&mut bytes);
        }
        let back = decode_stream(&bytes).expect("stream decodes");
        prop_assert_eq!(back, frames);
    }

    #[test]
    fn peek_client_id_agrees_with_decode(frame in frame_strategy()) {
        let bytes = frame.encode();
        prop_assert_eq!(ObsFrame::peek_client_id(&bytes), Ok(frame.client_id));
    }
}
