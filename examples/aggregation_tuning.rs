//! Aggregation tuning: why the A-MPDU aggregation window must follow the
//! client's mobility (paper section 5).
//!
//! For each mobility mode, transmits a saturated downlink with three
//! fixed aggregation windows and the mobility-aware adaptive policy,
//! showing the static/mobile crossover and that adaptive tracks the best
//! fixed choice in every mode.
//!
//! Run with: `cargo run --release --example aggregation_tuning`

use mobisense_bench::{TraceBundle, TRACE_STEP};
use mobisense_core::scenario::{Scenario, ScenarioKind};
use mobisense_mac::agg::AggPolicy;
use mobisense_mac::rate::AtherosRa;
use mobisense_mac::sim::LinkRun;
use mobisense_mobility::movers::EnvIntensity;
use mobisense_util::units::{MILLISECOND, SECOND};
use mobisense_util::DetRng;

fn throughput(bundle: &TraceBundle, agg: AggPolicy, hints: bool) -> f64 {
    let mut ra = AtherosRa::stock();
    let mut rng = DetRng::seed_from_u64(5);
    LinkRun::new()
        .with_agg(agg)
        .run(
            &mut ra,
            |t| bundle.link_state_at(t),
            |t| if hints { bundle.phy_hint_at(t) } else { None },
            bundle.duration(),
            &mut rng,
        )
        .mbps
}

fn main() {
    println!("mode           2ms      4ms      8ms      adaptive (classifier-driven)");
    println!("----           ---      ---      ---      --------");
    for (label, kind) in [
        ("static", ScenarioKind::Static),
        (
            "environmental",
            ScenarioKind::Environmental(EnvIntensity::Strong),
        ),
        ("micro", ScenarioKind::Micro),
        ("macro", ScenarioKind::MacroRandom),
    ] {
        let mut sc = Scenario::new(kind, 77);
        let bundle = TraceBundle::record(&mut sc, 25 * SECOND, TRACE_STEP, 77);
        let t2 = throughput(&bundle, AggPolicy::Fixed(2 * MILLISECOND), false);
        let t4 = throughput(&bundle, AggPolicy::Fixed(4 * MILLISECOND), false);
        let t8 = throughput(&bundle, AggPolicy::Fixed(8 * MILLISECOND), false);
        let ad = throughput(&bundle, AggPolicy::adaptive(), true);
        println!("{label:<14} {t2:>6.1}   {t4:>6.1}   {t8:>6.1}   {ad:>6.1}  Mbps");
    }
    println!();
    println!(
        "Stable channels amortise PHY overhead with long aggregates; \
         moving channels lose the tail of long frames to equalisation \
         staleness. The adaptive policy follows the classifier (Table 2)."
    );
}
