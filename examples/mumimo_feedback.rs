//! MU-MIMO feedback scheduling: serving three clients with different
//! mobility from one 3-antenna AP (paper section 6.2/6.3).
//!
//! Shows the stale-CSI interference problem (uniform slow feedback kills
//! the walking client) and the fix (per-client mobility-aware feedback
//! periods chosen by the classifier).
//!
//! Run with: `cargo run --release --example mumimo_feedback`

use mobisense_net::beamform::mumimo::MuMimoEmulator;
use mobisense_util::units::{MILLISECOND, SECOND};

fn main() {
    let clients = ["environmental", "micro-mobility", "macro-mobility"];

    println!("uniform CSI feedback period sweep (3 clients, zero-forcing):");
    println!("period    env      micro    macro    total");
    for period_ms in [20u64, 100, 200, 1000] {
        let mut e = MuMimoEmulator::paper_mix(3);
        let s = e.run([period_ms * MILLISECOND; 3], 2 * MILLISECOND, 10 * SECOND);
        println!(
            "{:>4} ms  {:>6.1}   {:>6.1}   {:>6.1}   {:>6.1}  Mbps",
            period_ms,
            s.per_client_mbps[0],
            s.per_client_mbps[1],
            s.per_client_mbps[2],
            s.total_mbps
        );
    }

    println!();
    println!("per-client adaptive feedback (classifier-driven, Table 2):");
    let mut e1 = MuMimoEmulator::paper_mix(3);
    let adaptive = e1.run_adaptive(2 * MILLISECOND, 10 * SECOND);
    let mut e2 = MuMimoEmulator::paper_mix(3);
    let fixed = e2.run([200 * MILLISECOND; 3], 2 * MILLISECOND, 10 * SECOND);
    for (k, name) in clients.iter().enumerate() {
        println!(
            "  {name:<16} fixed-200ms {:>6.1} Mbps -> adaptive {:>6.1} Mbps",
            fixed.per_client_mbps[k], adaptive.per_client_mbps[k]
        );
    }
    println!(
        "  network total    fixed-200ms {:>6.1} Mbps -> adaptive {:>6.1} Mbps ({:+.0}%)",
        fixed.total_mbps,
        adaptive.total_mbps,
        100.0 * (adaptive.total_mbps - fixed.total_mbps) / fixed.total_mbps
    );
    println!();
    println!(
        "Stale CSI from the walking client leaks as inter-user \
         interference; refreshing only that client's feedback restores \
         the zero-forcing nulls without drowning the channel in sounding."
    );
}
