//! Fleet serving: one controller classifying a thousand clients at once.
//!
//! Generates a synthetic building population (parked phones, handled
//! phones, people walking) as pre-encoded wire streams, then replays it
//! through the sharded serving layer with load shedding enabled —
//! printing throughput, shed rate, decision latency and the per-mode
//! decision mix.
//!
//! Run with: `cargo run --release --example serve_fleet`
//! Optional args: `[n_clients] [sim_minutes]` (defaults 1000, 2).

use mobisense_serve::fleet::{EncodedFleet, FleetConfig};
use mobisense_serve::queue::OverflowPolicy;
use mobisense_serve::service::{serve_fleet, ServeConfig};
use mobisense_telemetry::{Event, Telemetry};
use mobisense_util::units::{MILLISECOND, SECOND};

fn main() {
    let mut args = std::env::args().skip(1);
    let n_clients: u32 = args.next().and_then(|a| a.parse().ok()).unwrap_or(1000);
    let sim_minutes: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(2);

    let fleet_cfg = FleetConfig {
        n_clients,
        duration: sim_minutes * 60 * SECOND,
        step: 100 * MILLISECOND,
        base_seed: 42,
        ..FleetConfig::default()
    };
    println!(
        "generating {} clients x {} sim-minutes ({} frames each)...",
        n_clients,
        sim_minutes,
        fleet_cfg.frames_per_client()
    );
    let t0 = std::time::Instant::now();
    let fleet = EncodedFleet::generate(&fleet_cfg);
    println!(
        "fleet ready in {:.1} s: {} frames, {:.1} MiB on the wire",
        t0.elapsed().as_secs_f64(),
        fleet.total_frames(),
        fleet.total_bytes() as f64 / (1024.0 * 1024.0)
    );

    let cfg = ServeConfig {
        n_shards: 4,
        queue_capacity: 256,
        overflow: OverflowPolicy::ShedOldestPerClient,
        ..ServeConfig::default()
    };
    let mut tel = Telemetry::new();
    let (decisions, report) = serve_fleet(&cfg, &fleet, &mut tel);

    println!();
    println!(
        "served {} frames in {:.2} s ({:.0} frames/sec) across {} shards",
        report.frames_processed,
        report.wall.as_secs_f64(),
        report.frames_per_sec(),
        cfg.n_shards
    );
    println!(
        "decisions: {} ({:.0}/sec wall clock), shed rate {:.2}% ({} of {} frames)",
        report.decisions,
        report.decisions as f64 / report.wall.as_secs_f64().max(1e-9),
        100.0 * report.shed_rate(),
        report.shed,
        report.frames_in
    );
    println!(
        "(producers replay the fleet at memory speed rather than real time, so the \
         shed rate shows the overload path working, not a real-time deficit)"
    );
    let q = |p: f64| report.latency_ns.quantile(p).unwrap_or(f64::NAN) / 1e3;
    println!(
        "decision latency: p50 {:.1} us, p99 {:.1} us; peak queue depth {}",
        q(0.50),
        q(0.99),
        report
            .per_shard
            .iter()
            .map(|s| s.max_depth)
            .max()
            .unwrap_or(0)
    );

    println!();
    println!("decision mix (mode transitions, post warm-up):");
    for (label, n) in ["static", "environmental", "micro", "macro"]
        .iter()
        .zip(report.per_mode)
    {
        println!("  {label:<14} {n}");
    }
    let roams = decisions
        .iter()
        .filter(|d| d.policy.encourage_roaming)
        .count();
    println!("  of which {roams} macro-away transitions armed roaming");

    println!();
    println!("per-shard accounting (from telemetry events):");
    for e in tel.events() {
        if let Event::ServeShard {
            shard,
            frames,
            decisions,
            shed,
            max_depth,
            ..
        } = e
        {
            println!(
                "  shard {shard}: {frames} frames, {decisions} decisions, \
                 {shed} shed, max depth {max_depth}"
            );
        }
    }
}
