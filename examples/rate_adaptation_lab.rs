//! Rate-adaptation lab: replay one walking channel trace against every
//! implemented rate-adaptation scheme — the paper's trace-based
//! emulation methodology (section 4.3) in miniature.
//!
//! Run with: `cargo run --release --example rate_adaptation_lab`

use mobisense_bench::{TraceBundle, TRACE_STEP};
use mobisense_core::scenario::{Scenario, ScenarioKind};
use mobisense_mac::agg::AggPolicy;
use mobisense_mac::rate::{AtherosRa, EsnrRa, RateAdapter, SensorHintRa, SoftRateRa};
use mobisense_mac::sim::LinkRun;
use mobisense_util::units::SECOND;
use mobisense_util::DetRng;

fn main() {
    println!("recording a 30 s walking channel trace...");
    let mut sc = Scenario::new(ScenarioKind::MacroRandom, 2024);
    let bundle = TraceBundle::record(&mut sc, 30 * SECOND, TRACE_STEP, 2024);

    let run = LinkRun::new().with_agg(AggPolicy::stock());
    let mut results: Vec<(String, f64)> = Vec::new();

    // Each scheme sees the *same* channel trace; only its knowledge
    // differs (PHY mobility hints, accelerometer hints, CSI feedback).
    let schemes: Vec<(Box<dyn RateAdapter>, &str)> = vec![
        (Box::new(AtherosRa::stock()), "none"),
        (Box::new(AtherosRa::mobility_aware()), "phy"),
        (
            Box::new(SensorHintRa::new(DetRng::seed_from_u64(1))),
            "sensor",
        ),
        (Box::new(SoftRateRa::new()), "none"),
        (Box::new(EsnrRa::new()), "none"),
    ];

    for (mut ra, hint_kind) in schemes {
        let mut rng = DetRng::seed_from_u64(99);
        let stats = run.run(
            ra.as_mut(),
            |t| bundle.link_state_at(t),
            |t| match hint_kind {
                "phy" => bundle.phy_hint_at(t),
                "sensor" => bundle.sensor_hint_at(t),
                _ => None,
            },
            bundle.duration(),
            &mut rng,
        );
        results.push((ra.name().to_string(), stats.mbps));
    }

    println!();
    println!("scheme                    goodput (identical channel trace)");
    println!("------                    --------------------------------");
    for (name, mbps) in &results {
        let bar = "#".repeat((mbps / 3.0) as usize);
        println!("{name:<25} {mbps:>6.1} Mbps  {bar}");
    }
    println!();
    println!(
        "The PHY-hinted Atheros needs no client modification; ESNR and \
         SoftRate require client-side feedback (paper section 4.3)."
    );
}
