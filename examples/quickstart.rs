//! Quickstart: classify a client's mobility from AP-side PHY information.
//!
//! Builds a simulated world in which a user first leaves the phone on a
//! desk, then walks away from the AP — and shows the AP-side classifier
//! (CSI similarity + ToF trend, no client cooperation) following along.
//!
//! Run with: `cargo run --release --example quickstart`

use mobisense_core::classifier::{ClassifierConfig, MobilityClassifier};
use mobisense_core::scenario::{Scenario, ScenarioKind};
use mobisense_phy::tof::{TofConfig, TofSampler};
use mobisense_util::units::{MILLISECOND, SECOND};
use mobisense_util::DetRng;

fn main() {
    // Phase 1: the phone sits on a desk for 12 s.
    // Phase 2: the user picks it up and walks away from the AP.
    let mut parked = Scenario::new(ScenarioKind::Static, 7);
    let mut walking = Scenario::new(ScenarioKind::MacroAway, 7);

    let mut classifier = MobilityClassifier::new(ClassifierConfig::default());
    let mut tof = TofSampler::new(TofConfig::default(), 0, DetRng::seed_from_u64(7));

    println!("time     truth          AP's classification");
    println!("----     -----          -------------------");
    let mut t = 0u64;
    while t <= 26 * SECOND {
        // The AP sees one frame exchange every 20 ms.
        let obs = if t < 12 * SECOND {
            parked.observe(t)
        } else {
            walking.observe(t - 12 * SECOND)
        };
        let truth = match (obs.truth.mode, obs.truth.direction) {
            (m, Some(d)) => format!("{m} ({d})"),
            (m, None) => m.to_string(),
        };
        if let Some(m) = tof.poll(t, obs.distance_m) {
            classifier.on_tof_median(m.cycles);
        }
        classifier.on_frame_csi(t, &obs.csi);
        if t.is_multiple_of(2 * SECOND) {
            let decision = classifier
                .current()
                .map(|c| c.to_string())
                .unwrap_or_else(|| "(warming up)".into());
            println!("{:>3} s    {:<14} {}", t / SECOND, truth, decision);
        }
        t += 20 * MILLISECOND;
    }
    println!();
    println!(
        "ToF measurement currently active: {} (only runs while CSI \
         indicates device mobility)",
        classifier.tof_measurement_active()
    );
}
