//! Live ops observability: per-frame stage tracing, periodic snapshot
//! JSONL, and the stall watchdog — on one serving run.
//!
//! Serves a synthetic fleet with 1-in-N stage sampling and the ops
//! monitor ticking in the background, then prints the per-stage
//! latency table the traces produced, the snapshot stream the monitor
//! captured (parsed back through the versioned JSONL schema), and a
//! deliberately gated shard to show the watchdog flagging a stall.
//!
//! Run with: `cargo run --release --example ops_snapshot`
//! Optional args: `[n_clients] [sample_every]` (defaults 200, 8).

use std::sync::Arc;
use std::time::Duration;

use mobisense_serve::fleet::{EncodedFleet, FleetConfig};
use mobisense_serve::service::{serve_fleet, ServeConfig};
use mobisense_serve::{
    ObsFrame, OpsMonitor, OverflowPolicy, ShardQueue, SnapshotPolicy, Ticket, WorkItem,
};
use mobisense_telemetry::{parse_snapshots, Event, Snapshot, Stage, Telemetry};
use mobisense_util::units::{MILLISECOND, SECOND};

fn main() {
    let mut args = std::env::args().skip(1);
    let n_clients: u32 = args.next().and_then(|a| a.parse().ok()).unwrap_or(200);
    let sample_every: u32 = args.next().and_then(|a| a.parse().ok()).unwrap_or(8);

    let fleet_cfg = FleetConfig {
        n_clients,
        duration: 20 * SECOND,
        step: 20 * MILLISECOND,
        base_seed: 42,
        ..FleetConfig::default()
    };
    println!(
        "generating {} clients x {} frames...",
        n_clients,
        fleet_cfg.frames_per_client()
    );
    let fleet = EncodedFleet::generate(&fleet_cfg);

    // Stage tracing samples 1-in-N frames; the ops monitor snapshots
    // queue health every 5 ms and watches for stalls.
    let cfg = ServeConfig {
        stage_sampling: sample_every,
        snapshot: Some(SnapshotPolicy {
            interval: Duration::from_millis(5),
            stall_intervals: 2,
        }),
        ..ServeConfig::default()
    };
    let mut tel = Telemetry::new();
    let (_decisions, report) = serve_fleet(&cfg, &fleet, &mut tel);

    println!();
    println!(
        "served {} frames in {:.2} s ({:.0} frames/sec); {} frames carried a stage trace (1 in {})",
        report.frames_processed,
        report.wall.as_secs_f64(),
        report.frames_per_sec(),
        report.stages.traces(),
        sample_every,
    );
    println!();
    println!("per-stage latency (sampled traces):");
    println!(
        "  {:<12} {:>8} {:>12} {:>12}",
        "stage", "traces", "p50_ns", "p99_ns"
    );
    for stage in Stage::ALL {
        let h = report.stages.get(stage);
        if h.count() == 0 {
            continue;
        }
        let label = if stage == Stage::Ingest {
            "total"
        } else {
            stage.name()
        };
        let q = |p: f64| h.quantile(p).unwrap_or(f64::NAN);
        println!(
            "  {label:<12} {:>8} {:>12.0} {:>12.0}",
            h.count(),
            q(0.50),
            q(0.99)
        );
    }

    // The monitor's snapshot stream: versioned JSONL blocks, one per
    // tick, parseable by anything downstream.
    let snaps = parse_snapshots(&report.snapshots.concat()).expect("snapshot stream parses");
    println!();
    println!(
        "ops monitor: {} snapshots over the run ({} Event::Snapshot in the sink)",
        snaps.len(),
        tel.events()
            .filter(|e| matches!(e, Event::Snapshot { .. }))
            .count()
    );
    if let Some(last) = snaps.last() {
        println!(
            "last snapshot (seq {}, wall {} ms):",
            last.seq,
            last.wall_ns / 1_000_000
        );
        for (name, v) in &last.counters {
            println!("  counter  {name:<26} {v}");
        }
        for (name, v) in &last.gauges {
            println!("  gauge    {name:<26} {v}");
        }
    }

    // Anything holding a registry can snapshot on demand — here the
    // end-of-run report, stage histograms included.
    let end = Snapshot::capture(1, report.wall.as_nanos() as u64, &report.registry());
    println!();
    println!(
        "on-demand registry snapshot: {} metrics, {} bytes of JSONL",
        end.metrics(),
        end.to_jsonl().len()
    );

    // The watchdog, demonstrated honestly: a shard queue nobody pops
    // has frozen progress and pending work, so two quiet intervals flag
    // it. This is the signal a wedged worker would produce in
    // production.
    let gated = Arc::new(ShardQueue::new(16));
    for seq in 0..5 {
        let frame = ObsFrame {
            client_id: 9,
            seq,
            at: u64::from(seq),
            distance_m: 3.0,
            digest: vec![0.25; 4],
        };
        gated.push(
            WorkItem::frame(Ticket::untraced(), frame),
            OverflowPolicy::Block,
        );
    }
    let monitor = OpsMonitor::spawn(
        vec![Arc::clone(&gated)],
        None,
        SnapshotPolicy {
            interval: Duration::from_millis(5),
            stall_intervals: 2,
        },
    )
    .expect("spawn monitor");
    std::thread::sleep(Duration::from_millis(30));
    let out = monitor.stop();
    println!();
    println!(
        "gated-shard demo: {} ticks, {} stall flag(s)",
        out.ticks,
        out.stalls.len()
    );
    for stall in &out.stalls {
        println!(
            "  STALL {}: no progress for {} intervals, {} frames pending",
            stall.source, stall.intervals, stall.backlog
        );
    }
    gated.close();
}
