//! Record, crash, recover, replay: the trace store end to end.
//!
//! Records a synthetic fleet (frames + the live decision log) into a
//! segmented on-disk store, simulates a crash mid-write of a second
//! batch, recovers everything the seals protect, compacts the store,
//! and finally replays the recorded frames through 1, 2 and 4 shards
//! — verifying each merged decision log is byte-identical to the
//! golden log recorded alongside the frames.
//!
//! Run with: `cargo run --release --example record_replay`
//! Optional args: `[n_clients] [sim_seconds]` (defaults 128, 10).

use mobisense_serve::fleet::{EncodedFleet, FleetConfig};
use mobisense_serve::service::ServeConfig;
use mobisense_store::{
    compact, record_fleet, replay_client, replay_fleet, StoreConfig, TraceReader, TraceWriter,
};
use mobisense_telemetry::{NoopSink, Telemetry};
use mobisense_util::units::{MILLISECOND, SECOND};

fn main() {
    let mut args = std::env::args().skip(1);
    let n_clients: u32 = args.next().and_then(|a| a.parse().ok()).unwrap_or(128);
    let sim_seconds: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(10);

    let dir = std::env::temp_dir().join(format!("mobisense-record-replay-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = StoreConfig::new(&dir).with_target_segment_bytes(512 << 10);
    let serve_cfg = ServeConfig::default();

    // --- Record ---------------------------------------------------
    let fleet_cfg = FleetConfig {
        n_clients,
        duration: sim_seconds * SECOND,
        step: 50 * MILLISECOND,
        base_seed: 42,
        ..FleetConfig::default()
    };
    println!(
        "generating {} clients x {} frames...",
        n_clients,
        fleet_cfg.frames_per_client()
    );
    let fleet = EncodedFleet::generate(&fleet_cfg);
    let mut tel = Telemetry::new();
    let rec = record_fleet(&store, &serve_cfg, &fleet, &mut tel).expect("record");
    println!(
        "recorded {} frames + golden log into {} segments ({:.1} MiB) at {}",
        rec.frames,
        rec.segments.len(),
        rec.bytes as f64 / (1024.0 * 1024.0),
        dir.display()
    );

    // --- Crash mid-write ------------------------------------------
    // A second recording session dies before sealing: buffered bytes
    // reach the OS, the seal never does.
    let mut w = TraceWriter::create(store.clone()).expect("create");
    for bytes in fleet.encoded_frames_time_major().take(500) {
        w.append_encoded(bytes).expect("append");
    }
    let tail = w.abandon().expect("abandon");
    println!(
        "\nsimulated crash: 500 frames in flight, unsealed tail at {}",
        tail.file_name().and_then(|n| n.to_str()).unwrap_or("?")
    );

    let reader = TraceReader::open(&dir).expect("open");
    let recv = reader.recover().expect("recover");
    println!(
        "recovery: {} sealed segments intact, {} skipped, tail salvaged {} of 500 frames",
        recv.sealed_segments,
        recv.skipped.len(),
        recv.tail_frames
    );
    // The tail was a duplicate experiment; drop it before replay.
    std::fs::remove_file(&tail).expect("rm tail");

    // --- Compact --------------------------------------------------
    let merged = StoreConfig::new(&dir).with_target_segment_bytes(4 << 20);
    let report = compact(&merged, &mut NoopSink).expect("compact");
    println!(
        "\ncompacted {} segments -> {} ({:.1} -> {:.1} MiB)",
        report.segments_before,
        report.segments_after,
        report.bytes_before as f64 / (1024.0 * 1024.0),
        report.bytes_after as f64 / (1024.0 * 1024.0)
    );

    // --- Replay and verify ----------------------------------------
    let replay = replay_fleet(&store, &serve_cfg, &[1, 2, 4], &mut NoopSink).expect("replay");
    println!(
        "\nreplayed {} frames of {} clients through 1, 2 and 4 shards",
        replay.frames, replay.clients
    );
    assert!(
        replay.all_match(),
        "replay diverged: {:?}",
        replay.mismatches()
    );
    println!(
        "all {} replayed decision logs byte-identical to the golden log ({} bytes)",
        replay.logs.len(),
        replay.golden.len()
    );

    // Filtered replay: one client through the sparse index.
    let client = n_clients / 2;
    let rows = replay_client(&store, &serve_cfg, client, &mut NoopSink).expect("replay client");
    let golden_rows = replay
        .golden
        .lines()
        .skip(1)
        .filter(|l| l.starts_with(&format!("{client},")))
        .count();
    assert_eq!(rows.len(), golden_rows);
    println!(
        "client {client} filtered replay: {} decision rows, all matching its golden slice",
        rows.len()
    );

    let _ = std::fs::remove_dir_all(&dir);
}
