//! The always-on flight recorder: record *while* serving, tail live,
//! keep the store bounded, replay bit-exactly.
//!
//! Serves a synthetic fleet with a background recorder teeing every
//! observation frame (and the merged decision log) into the segmented
//! store, while a live `tail()` cursor follows the recording from a
//! second thread. Afterwards the store is replayed through several
//! shard counts and checked byte-identical against the live golden
//! log, then a retention sweep trims the store to a byte budget —
//! refusing to touch a protected per-client replay window.
//!
//! Run with: `cargo run --release --example flight_recorder`
//! Optional args: `[n_clients] [sim_seconds]` (defaults 128, 10).

use std::sync::atomic::{AtomicBool, Ordering};

use mobisense_serve::fleet::{EncodedFleet, FleetConfig};
use mobisense_serve::recording::{RecordPolicy, RecordingConfig};
use mobisense_serve::service::{decision_log_csv, serve_streams_recorded, ServeConfig};
use mobisense_store::{
    enforce_retention, replay_fleet, spawn_flight_recorder, RetentionPolicy, StoreConfig,
    TailCursor, TailItem, TraceReader,
};
use mobisense_telemetry::NoopSink;
use mobisense_util::units::{MILLISECOND, SECOND};

fn main() {
    let mut args = std::env::args().skip(1);
    let n_clients: u32 = args.next().and_then(|a| a.parse().ok()).unwrap_or(128);
    let sim_seconds: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(10);

    let dir =
        std::env::temp_dir().join(format!("mobisense-flight-recorder-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = StoreConfig::new(&dir).with_target_segment_bytes(512 << 10);
    let serve_cfg = ServeConfig::default();

    // --- Serve with the recorder on -------------------------------
    let fleet_cfg = FleetConfig {
        n_clients,
        duration: sim_seconds * SECOND,
        step: 50 * MILLISECOND,
        base_seed: 42,
        ..FleetConfig::default()
    };
    println!(
        "generating {} clients x {} frames...",
        n_clients,
        fleet_cfg.frames_per_client()
    );
    let fleet = EncodedFleet::generate(&fleet_cfg);

    let stop = AtomicBool::new(false);
    let (golden, stats, summary, tail_frames, tail_rows, polls) = std::thread::scope(|scope| {
        // A live tailer follows the store while the service writes it.
        let tailer = scope.spawn(|| {
            let mut cursor = TailCursor::new(&dir);
            let mut rows = 0u64;
            let mut polls = 0u64;
            loop {
                let done = stop.load(Ordering::Acquire);
                for item in cursor.poll().expect("tail poll") {
                    if let TailItem::Row(_) = item {
                        rows += 1;
                    }
                }
                polls += 1;
                if done {
                    break;
                }
                std::thread::yield_now();
            }
            (cursor.frames_seen(), rows, polls)
        });

        let rec = spawn_flight_recorder(
            store.clone(),
            RecordingConfig {
                capacity: 4096,
                policy: RecordPolicy::Block,
            },
        )
        .expect("spawn recorder");
        let handle = rec.handle();
        let (decisions, report) =
            serve_streams_recorded(&serve_cfg, &fleet.streams, &handle, &mut NoopSink);
        let (summary, stats) = rec.finish().expect("recorder finish");
        stop.store(true, Ordering::Release);
        let (tail_frames, tail_rows, polls) = tailer.join().expect("tailer");
        println!(
            "served {} frames across {} shards with the recorder on",
            report.frames_processed,
            report.per_shard.len()
        );
        (
            decision_log_csv(&decisions),
            stats,
            summary,
            tail_frames,
            tail_rows,
            polls,
        )
    });
    println!(
        "recorded {} frames + {} decision rows into {} segments ({:.1} MiB), {} dropped, queue depth peaked at {}",
        stats.frames,
        stats.rows,
        summary.segments.len(),
        summary.bytes as f64 / (1024.0 * 1024.0),
        stats.dropped,
        stats.max_depth
    );
    println!(
        "live tail followed along: {} frames + {} rows over {} polls",
        tail_frames, tail_rows, polls
    );
    assert_eq!(tail_frames, stats.frames, "tail saw the whole recording");

    // --- Replay and verify ----------------------------------------
    let replay = replay_fleet(&store, &serve_cfg, &[1, 2, 4], &mut NoopSink).expect("replay");
    assert_eq!(replay.golden, golden, "stored golden == live golden");
    assert!(
        replay.all_match(),
        "replay diverged: {:?}",
        replay.mismatches()
    );
    println!(
        "\nreplayed through 1, 2 and 4 shards: all decision logs byte-identical to the live golden log ({} bytes)",
        golden.len()
    );

    // --- Retention sweep ------------------------------------------
    // Trim the store hard, but client 0's last 3 sim-seconds are
    // protected by a replay window: segments covering them cannot be
    // dropped, no matter the budget.
    let reader = TraceReader::open(&dir).expect("open");
    let before: u64 = reader.segments().iter().map(|m| m.bytes).sum();
    let client0_before = reader.client_frames(0).expect("client 0");
    let newest_at = client0_before.iter().map(|f| f.at).max().unwrap_or(0);
    let window = 3 * SECOND;
    let policy = RetentionPolicy::keep_everything()
        .with_max_bytes(before / 8)
        .with_keep_last_segments(1)
        .with_replay_window(0, window);
    let plan = enforce_retention(&dir, &policy, &mut NoopSink).expect("sweep");
    let client0_after = TraceReader::open(&dir)
        .expect("open")
        .client_frames(0)
        .expect("client 0");
    println!(
        "\nretention sweep to {:.1} MiB: dropped {} segments ({:.1} MiB), protected {} segments in client 0's 3 s replay window",
        before as f64 / (8.0 * 1024.0 * 1024.0),
        plan.drop.len(),
        plan.dropped_bytes() as f64 / (1024.0 * 1024.0),
        plan.protected.len()
    );
    let in_window = |frames: &[mobisense_serve::wire::ObsFrame]| {
        frames
            .iter()
            .filter(|f| f.at >= newest_at.saturating_sub(window))
            .count()
    };
    assert_eq!(
        in_window(&client0_after),
        in_window(&client0_before),
        "every frame inside the replay window survived the sweep"
    );
    println!(
        "client 0 kept all {} frames of its window ({} of {} total remain)",
        in_window(&client0_after),
        client0_after.len(),
        client0_before.len()
    );

    let _ = std::fs::remove_dir_all(&dir);
}
