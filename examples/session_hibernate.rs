//! Session hibernation: serving a fleet far larger than the hot set.
//!
//! Serves the same pre-encoded fleet twice — once fully resident and
//! once with an aggressive hibernation policy that pages idle and
//! over-cap sessions out through the versioned snapshot codec (and a
//! live migration wave halfway through) — then proves the decision
//! logs are byte-identical and prints what hibernation bought:
//! resident session bytes bounded by the hot-set cap instead of the
//! client count, at the cost of fault-in latency on cold frames.
//!
//! Run with: `cargo run --release --example session_hibernate`
//! Optional args: `[n_clients] [max_hot_per_shard]` (defaults 2000, 8).

use std::sync::atomic::Ordering;
use std::sync::Arc;

use mobisense_serve::fleet::{EncodedFleet, FleetConfig};
use mobisense_serve::queue::Ticket;
use mobisense_serve::service::{decision_log_csv, ServeConfig, ServeReport, ShardEngine};
use mobisense_serve::SessionGauges;
use mobisense_session::{HibernationConfig, RetirePolicy};
use mobisense_util::units::{MILLISECOND, SECOND};

/// Serves the fleet time-major, migrating two clients at the halfway
/// mark, and returns the decision log plus the peak resident-bytes
/// gauge observed along the way.
fn run(cfg: &ServeConfig, fleet: &EncodedFleet) -> (String, ServeReport, u64) {
    let engine = ShardEngine::spawn(cfg).expect("spawn engine");
    let gauges: Vec<Arc<SessionGauges>> = engine.session_gauges().to_vec();
    let resident = |gauges: &[Arc<SessionGauges>]| -> u64 {
        gauges
            .iter()
            .map(|g| g.resident_bytes.load(Ordering::Relaxed))
            .sum()
    };

    let max_frames = fleet.streams.iter().map(|s| s.n_frames).max().unwrap_or(0);
    let mut submitted = 0u64;
    let mut peak = 0u64;
    for i in 0..max_frames {
        if i == max_frames / 2 {
            for s in fleet.streams.iter().take(2) {
                let to = (engine.route_of(s.client_id) + 1) % engine.n_shards();
                engine.migrate(s.client_id, to).expect("migrate");
            }
        }
        for s in &fleet.streams {
            if i < s.n_frames {
                engine.submit(Ticket::untraced(), s.obs(i));
                submitted += 1;
                if submitted.is_multiple_of(1024) {
                    peak = peak.max(resident(&gauges));
                }
            }
        }
    }
    let (decisions, report) = engine.finish(submitted);
    peak = peak.max(resident(&gauges));
    (decision_log_csv(&decisions), report, peak)
}

fn main() {
    let mut args = std::env::args().skip(1);
    let n_clients: u32 = args.next().and_then(|a| a.parse().ok()).unwrap_or(2000);
    let max_hot: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(8);

    let fleet_cfg = FleetConfig {
        n_clients,
        duration: 20 * SECOND,
        step: 100 * MILLISECOND,
        base_seed: 513,
        ..FleetConfig::default()
    };
    println!(
        "generating {} clients x {} frames...",
        n_clients,
        fleet_cfg.frames_per_client()
    );
    let fleet = EncodedFleet::generate(&fleet_cfg);

    let base = ServeConfig::default();
    let hibernating = ServeConfig {
        hibernation: HibernationConfig {
            idle_after: Some(300 * MILLISECOND),
            max_hot: Some(max_hot),
            policy: RetirePolicy::Hibernate,
        },
        ..base.clone()
    };

    println!("serving fully resident...");
    let (gold_csv, gold_report, gold_peak) = run(&base, &fleet);
    println!(
        "serving with hibernation (idle 300 ms, max {} hot per shard)...",
        max_hot
    );
    let (hib_csv, hib_report, hib_peak) = run(&hibernating, &fleet);

    assert_eq!(
        gold_csv, hib_csv,
        "hibernation/migration changed the decision log"
    );
    println!();
    println!(
        "decision log: {} decisions, byte-identical with hibernation on/off \
         (migrations included)",
        gold_report.decisions
    );
    let s = &hib_report.sessions;
    println!(
        "sessions: {} hibernated, {} restored, {} migrated; {} hot / {} paged out at exit",
        s.hibernated, s.restored, s.migrations, s.hot_final, s.hibernated_final
    );
    println!(
        "peak resident session bytes: {} resident-only vs {} hibernating ({:.1}%)",
        gold_peak,
        hib_peak,
        100.0 * hib_peak as f64 / gold_peak.max(1) as f64
    );
    let q = |p: f64| hib_report.fault_in_ns.quantile(p).unwrap_or(0.0) / 1e3;
    println!(
        "fault-in latency: p50 {:.1} us, p99 {:.1} us over {} restores",
        q(0.50),
        q(0.99),
        s.restored
    );
    println!(
        "throughput: {:.0} frames/sec resident, {:.0} frames/sec hibernating",
        gold_report.frames_per_sec(),
        hib_report.frames_per_sec()
    );
}
