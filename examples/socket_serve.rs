//! Socket serving: the fleet arrives over real loopback sockets.
//!
//! Binds the std-only poll-based socket edge, plays a synthetic fleet
//! against it over TCP (one connection per client, fragmented writes),
//! sprinkles a few frames over UDP, and prints the edge's accounting:
//! connection lifecycle, frame conservation (`accepted == processed +
//! shed + rejected`), resynchronizations, and proof that the decision
//! log matches the in-process run byte for byte.
//!
//! Run with: `cargo run --release --example socket_serve`
//! Optional args: `[n_clients] [chunk_bytes]` (defaults 200, 17).

use mobisense_edge::{serve_sockets, Edge, EdgeConfig};
use mobisense_serve::fleet::{EncodedFleet, FleetConfig};
use mobisense_serve::queue::OverflowPolicy;
use mobisense_serve::service::{decision_log_csv, serve_streams, ServeConfig};
use mobisense_telemetry::NoopSink;
use mobisense_util::units::{MILLISECOND, SECOND};

fn main() {
    let mut args = std::env::args().skip(1);
    let n_clients: u32 = args.next().and_then(|a| a.parse().ok()).unwrap_or(200);
    let chunk: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(17);

    let fleet = EncodedFleet::generate(&FleetConfig {
        n_clients,
        duration: 5 * SECOND,
        step: 100 * MILLISECOND,
        base_seed: 42,
        ..FleetConfig::default()
    });
    println!(
        "fleet: {} clients, {} frames, {:.1} KiB on the wire",
        n_clients,
        fleet.total_frames(),
        fleet.total_bytes() as f64 / 1024.0
    );

    // Blocking backpressure: lossless, so the socket run's decision
    // log is bit-identical to the in-process run (swap in
    // ShedOldestPerClient to watch the overload path instead).
    let serve_cfg = ServeConfig {
        n_shards: 4,
        queue_capacity: 256,
        overflow: OverflowPolicy::Block,
        ..ServeConfig::default()
    };
    let edge_cfg = EdgeConfig::default();

    // The reference: the same streams served in-process.
    let (golden_decisions, _) = serve_streams(&serve_cfg, &fleet.streams, &mut NoopSink);

    let t0 = std::time::Instant::now();
    let (decisions, report) =
        serve_sockets(&serve_cfg, &edge_cfg, &fleet.streams, chunk, &mut NoopSink)
            .expect("socket serve");
    let wall = t0.elapsed();

    println!();
    println!(
        "served {} frames over {} TCP connections in {:.2} s ({chunk}-byte writes)",
        report.stats.frames,
        report.stats.conns_accepted,
        wall.as_secs_f64()
    );
    println!(
        "conservation: accepted {} == processed {} + shed {} + rejected {} → {}",
        report.stats.frames,
        report.serve.frames_processed,
        report.serve.shed,
        report.stats.frames_rejected,
        if report.conserved() {
            "holds"
        } else {
            "BROKEN"
        }
    );
    println!(
        "peak concurrent connections {}, peak buffered bytes observed {}, resyncs {}",
        report.stats.conns_peak, report.stats.buffered_bytes, report.stats.resyncs
    );
    let identical = decision_log_csv(&decisions) == decision_log_csv(&golden_decisions);
    println!(
        "decision log vs in-process run: {}",
        if identical {
            "byte-identical"
        } else {
            "DIVERGED (shedding is timing-dependent; use Block for determinism)"
        }
    );

    // A taste of the UDP side: one edge, a few datagrams.
    let edge = Edge::bind(&serve_cfg, &edge_cfg, None).expect("bind");
    let few: Vec<_> = fleet.streams.iter().take(3).cloned().collect();
    let sent = mobisense_edge::send_datagrams_udp(edge.udp_addr(), &few).expect("send udp");
    while edge.stats().frames < sent {
        std::thread::yield_now();
    }
    let (_d, udp_report) = edge.finish(&mut NoopSink).expect("finish");
    println!();
    println!(
        "udp: {} datagrams in, {} frames decoded, conserved: {}",
        udp_report.stats.datagrams,
        udp_report.stats.frames,
        udp_report.conserved()
    );
}
