//! Telemetry dump: run the end-to-end simulation for both protocol
//! stacks with a live telemetry capture, then write the traces to
//! `target/telemetry/` as JSONL event streams plus CSV goodput series
//! and metrics snapshots.
//!
//! This demonstrates the observability substrate end to end: the same
//! simulation entry point (`run_end_to_end_with`) accepts any
//! `mobisense_telemetry::Sink`, and a full `Telemetry` capture records
//! classifier decisions, handoffs, beamforming soundings, A-MPDU
//! transmissions, rate changes and the per-interval goodput series.
//!
//! Run with: `cargo run --release --example telemetry_dump`

use mobisense_bench::dump;
use mobisense_net::sim::{run_end_to_end_with, Stack};
use mobisense_net::wlan::{MultiApWorld, WorldConfig};
use mobisense_telemetry::{Event, Telemetry};
use mobisense_util::units::SECOND;
use mobisense_util::Vec2;

fn corridor(seed: u64) -> MultiApWorld {
    let cfg = WorldConfig::default();
    let hi = cfg.base.room_hi;
    MultiApWorld::new(
        cfg,
        vec![
            Vec2::new(3.0, hi.y / 2.0),
            Vec2::new(hi.x - 3.0, hi.y / 2.0),
        ],
        seed,
    )
}

fn count(tel: &Telemetry, pred: impl Fn(&Event) -> bool) -> usize {
    tel.events().filter(|e| pred(e)).count()
}

fn main() {
    let seed = 3;
    let duration = 30 * SECOND;
    let dir = dump::default_dir();

    println!("writing telemetry captures to {}", dir.display());
    println!();
    println!("stack            mbps  handoffs  events  goodput_rows");
    for stack in [Stack::Default, Stack::MotionAware] {
        let mut world = corridor(seed);
        let mut tel = Telemetry::new();
        let stats = run_end_to_end_with(&mut world, stack, duration, seed, &mut tel);
        let stem = match stack {
            Stack::Default => "end_to_end_default",
            Stack::MotionAware => "end_to_end_motion_aware",
        };
        let paths = dump::write_capture(&dir, stem, &tel).expect("write telemetry dump");
        println!(
            "{:<15} {:>5.1}  {:>8}  {:>6}  {:>12}",
            stack.label(),
            stats.mbps,
            stats.handoffs,
            tel.events().count(),
            tel.goodput_series().len(),
        );
        println!("  events  -> {}", paths.events_jsonl.display());
        println!("  goodput -> {}", paths.goodput_csv.display());
        println!("  metrics -> {}", paths.metrics_csv.display());
        println!(
            "  breakdown: {} decisions, {} handoffs, {} soundings, {} ampdus, {} rate changes",
            count(&tel, |e| matches!(e, Event::Decision { .. })),
            count(&tel, |e| matches!(e, Event::Handoff { .. })),
            count(&tel, |e| matches!(e, Event::Beamsound { .. })),
            count(&tel, |e| matches!(e, Event::AmpduTx { .. })),
            count(&tel, |e| matches!(e, Event::RateChange { .. })),
        );
        println!();
    }
}
