//! Roaming walkthrough: a user walks across a six-AP office floor while
//! the WLAN controller watches the mobility classifier.
//!
//! Compares the stock client behaviour (stay until the signal floor
//! breaks, then scan) against the paper's controller-based protocol
//! (roam proactively, but only when the client is *moving away* from its
//! AP towards a better one), printing the association timeline of each.
//!
//! Run with: `cargo run --release --example roaming_walkthrough`

use mobisense_net::roaming::{expected_throughput_mbps, Roamer, RoamingConfig, RoamingScheme};
use mobisense_net::wlan::{MultiApWorld, WorldConfig};
use mobisense_util::units::{MILLISECOND, SECOND};
use mobisense_util::Vec2;

fn run(scheme: RoamingScheme) -> (f64, u32) {
    let mut world = MultiApWorld::new(
        WorldConfig::default(),
        vec![Vec2::new(4.0, 6.0), Vec2::new(46.0, 14.0)],
        42,
    );
    let mut roamer = Roamer::new(RoamingConfig::for_scheme(scheme), world.n_aps(), 42);
    println!("--- {} roaming ---", scheme.label());
    let mut t = 0u64;
    let mut last_ap = usize::MAX;
    let mut tp_sum = 0.0;
    let mut steps = 0u64;
    while t <= 40 * SECOND {
        let obs = world.observe(t);
        let assoc = roamer.step(&obs);
        if assoc.ap != last_ap {
            let cls = roamer
                .classification()
                .map(|c| format!(" [classifier: {c}]"))
                .unwrap_or_default();
            println!(
                "  t={:>4.1}s associated to AP{} (rssi {:>5.1} dBm){}",
                t as f64 / 1e9,
                assoc.ap,
                obs.aps[assoc.ap].rssi_dbm,
                cls
            );
            last_ap = assoc.ap;
        }
        steps += 1;
        if !assoc.in_outage {
            tp_sum += expected_throughput_mbps(obs.aps[assoc.ap].snr_db);
        }
        t += 50 * MILLISECOND;
    }
    let mean = tp_sum / steps as f64;
    println!(
        "  mean expected throughput {:.1} Mbps, {} handoffs",
        mean,
        roamer.handoffs()
    );
    (mean, roamer.handoffs())
}

fn main() {
    let (default_tp, _) = run(RoamingScheme::ClientDefault);
    println!();
    let (aware_tp, _) = run(RoamingScheme::Controller);
    println!();
    println!(
        "controller-based mobility-aware roaming gain: {:+.1}%",
        100.0 * (aware_tp - default_tp) / default_tp
    );
}
