//! Integration-test host crate: the tests in `tests/` exercise flows that
//! span several `mobisense` crates, and the `examples/` directory at the
//! repository root is built as this crate's examples.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
