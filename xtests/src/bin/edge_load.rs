//! Loopback load generator for the socket-edge soak tests.
//!
//! The soak wants ≥10k concurrent connections against one [`Edge`].
//! Holding both ends of 10k loopback sockets in one process would blow
//! the fd budget, so the client side lives in a few of these child
//! processes, each holding a slice of the connections and
//! lock-stepping with the parent over stdin/stdout:
//!
//! ```text
//! edge_load <addr> <n_conns> <frames_per_conn> <client_base>
//!   connect all            → print "ready"
//!   stdin "go"             → write every stream, half-close,
//!                            read each socket to EOF (server done)
//!                          → print "done", exit
//! ```
//!
//! One connection per client id (`client_base + i`), frames in seq
//! order — the ordering contract the edge's determinism rests on.

use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream};

use mobisense_serve::wire::ObsFrame;

fn stream_bytes(client_id: u32, frames: u32) -> Vec<u8> {
    let mut bytes = Vec::new();
    for seq in 0..frames {
        ObsFrame {
            client_id,
            seq,
            at: 1_000_000 * u64::from(seq),
            distance_m: 2.0 + f64::from(client_id % 7),
            digest: vec![0.5; 8],
        }
        .encode_into(&mut bytes);
    }
    bytes
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let usage = "usage: edge_load <addr> <n_conns> <frames_per_conn> <client_base>";
    let addr = args.get(1).expect(usage).clone();
    let n_conns: u32 = args.get(2).expect(usage).parse().expect("n_conns");
    let frames_per_conn: u32 = args.get(3).expect(usage).parse().expect("frames_per_conn");
    let client_base: u32 = args.get(4).expect(usage).parse().expect("client_base");

    let mut conns: Vec<TcpStream> = Vec::with_capacity(n_conns as usize);
    for _ in 0..n_conns {
        let sock = TcpStream::connect(&addr).expect("connect");
        conns.push(sock);
    }
    println!("ready");
    std::io::stdout().flush().expect("flush");

    let mut line = String::new();
    std::io::stdin().read_line(&mut line).expect("stdin");
    assert_eq!(line.trim(), "go", "unexpected command");

    for (i, sock) in conns.iter_mut().enumerate() {
        let bytes = stream_bytes(client_base + i as u32, frames_per_conn);
        sock.write_all(&bytes).expect("write stream");
        sock.shutdown(Shutdown::Write).expect("half-close");
    }
    // The server closes each connection once it has drained it;
    // reading to EOF here means "the edge consumed my slice".
    let mut sink = [0u8; 64];
    for sock in conns.iter_mut() {
        loop {
            match sock.read(&mut sink) {
                Ok(0) => break,
                Ok(_) => {}
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => break, // reset also means the server is done with us
            }
        }
    }
    println!("done");
    std::io::stdout().flush().expect("flush");
}
