//! Child-process harness for the kill-mid-compact matrix.
//!
//! The in-process crash tests prove the promotion protocol against a
//! clean `Err` return; this binary proves it against a real process
//! death. The parent test builds a store, spawns one of these per
//! [`CrashPoint`], and the child **aborts** — no destructors, no
//! buffered-writer flush on drop — the instant the injected crash
//! error surfaces. What the parent then finds on disk is exactly what
//! a kill -9 at that protocol step leaves behind.
//!
//! ```text
//! compact_crash <dir> <crash-point|none> <target_segment_bytes>
//!   exit 0  compaction completed (token "none", or injection never fired)
//!   abort   the injected crash fired (SIGABRT; the expected outcome)
//!   exit 2  bad usage
//!   exit 3  compaction failed with a non-injected error
//! ```

use std::io::ErrorKind;
use std::process::abort;

use mobisense_store::{CompactOptions, CrashPoint, StoreConfig, StoreError, StreamingCompactor};
use mobisense_telemetry::NoopSink;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let usage = "usage: compact_crash <dir> <crash-point|none> <target_segment_bytes>";
    let (Some(dir), Some(token), Some(target)) = (args.get(1), args.get(2), args.get(3)) else {
        eprintln!("{usage}");
        std::process::exit(2);
    };
    let crash_at = if token == "none" {
        None
    } else {
        match CrashPoint::parse(token) {
            Some(point) => Some(point),
            None => {
                eprintln!("unknown crash point {token:?}; {usage}");
                std::process::exit(2);
            }
        }
    };
    let target: usize = match target.parse() {
        Ok(n) => n,
        Err(e) => {
            eprintln!("bad target_segment_bytes {target:?}: {e}; {usage}");
            std::process::exit(2);
        }
    };

    let cfg = StoreConfig::new(dir).with_target_segment_bytes(target);
    let result = StreamingCompactor::new(cfg)
        .with_options(CompactOptions { crash_at })
        .run(&mut NoopSink);
    match result {
        Ok(_) => {}
        Err(StoreError::Io(e)) if e.kind() == ErrorKind::Interrupted => {
            // The injected crash: die like a kill, not like a return.
            abort();
        }
        Err(e) => {
            eprintln!("compaction failed: {e}");
            std::process::exit(3);
        }
    }
}
