//! Cross-crate socket-edge tests: the network frontend feeding the
//! serve layer over real loopback sockets.
//!
//! Covers the edge's four contracts end to end:
//!
//! * **determinism** — a socket session's merged decision log is
//!   byte-identical to the in-process run of the same streams, and a
//!   recorded socket session replays byte-identically through the
//!   trace store at multiple shard counts;
//! * **conservation** — every frame decoded off the wire is processed,
//!   shed, or rejected (`accepted == processed + shed + rejected`),
//!   asserted under a ≥10k-connection overload soak with tiny queues;
//! * **robustness** — corrupt bytes resynchronize, oversize buffers
//!   and over-quota connections are closed and accounted, UDP
//!   datagrams are decoded standalone;
//! * **crash salvage** — killing a recorded session mid-store leaves a
//!   verified prefix the recovery path salvages per-client in order.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use mobisense_edge::{
    serve_sockets, serve_sockets_recorded, ConnOutcome, Edge, EdgeConfig, EdgeStats,
};
use mobisense_serve::fleet::{EncodedFleet, FleetConfig};
use mobisense_serve::recording::{RecordPolicy, RecordingConfig};
use mobisense_serve::service::{decision_log_csv, serve_streams, ServeConfig};
use mobisense_serve::wire::ObsFrame;
use mobisense_serve::OverflowPolicy;
use mobisense_store::{replay_fleet, spawn_flight_recorder, StoreConfig, TraceReader};
use mobisense_telemetry::{NoopSink, Telemetry};
use mobisense_util::units::{Nanos, MILLISECOND, SECOND};

fn fresh_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "mobisense-xtest-socketedge-{}-{tag}-{n}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create test dir");
    dir
}

fn obs(client: u32, seq: u32) -> ObsFrame {
    ObsFrame {
        client_id: client,
        seq,
        at: 1_000_000 * seq as Nanos,
        distance_m: 2.5,
        digest: vec![0.75; 8],
    }
}

/// Polls the edge counters until `pred` holds or the deadline passes.
fn wait_for(edge: &Edge, deadline: Duration, pred: impl Fn(&EdgeStats) -> bool) -> EdgeStats {
    let start = Instant::now();
    loop {
        let stats = edge.stats();
        if pred(&stats) {
            return stats;
        }
        assert!(
            start.elapsed() < deadline,
            "timed out waiting on edge stats: {stats:?}"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// The headline determinism contract on the wire: serving a fleet over
/// real loopback TCP — deliberately fragmented into 7-byte writes —
/// yields a decision log byte-identical to the in-process run, and the
/// recorded session replays byte-identically through the store at
/// shard counts 1 and 4.
#[test]
fn socket_serve_matches_in_process_golden_and_replays() {
    let dir = fresh_dir("golden");
    let fleet = EncodedFleet::generate(&FleetConfig {
        n_clients: 24,
        duration: SECOND,
        step: 50 * MILLISECOND,
        base_seed: 2107,
        ..FleetConfig::default()
    });
    let serve_cfg = ServeConfig::default();
    let store = StoreConfig::new(&dir).with_target_segment_bytes(64 << 10);

    let (in_process, _) = serve_streams(&serve_cfg, &fleet.streams, &mut NoopSink);
    let golden = decision_log_csv(&in_process);

    let rec = spawn_flight_recorder(
        store.clone(),
        RecordingConfig {
            capacity: 1024,
            policy: RecordPolicy::Block,
        },
    )
    .expect("spawn recorder");
    let handle = rec.handle();
    let mut sink = Telemetry::new();
    let (decisions, report) = serve_sockets_recorded(
        &serve_cfg,
        &EdgeConfig::default(),
        &fleet.streams,
        7,
        &handle,
        &mut sink,
    )
    .expect("socket serve");
    let (_summary, stats) = rec.finish().expect("recorder finish");

    assert_eq!(
        decision_log_csv(&decisions),
        golden,
        "socket path diverged from the in-process decision log"
    );
    assert_eq!(report.stats.frames, fleet.total_frames());
    assert_eq!(report.serve.frames_processed, fleet.total_frames());
    assert_eq!(report.stats.conns_accepted, 24);
    assert_eq!(report.stats.resyncs, 0);
    assert_eq!(report.truncated_bytes, 0);
    assert!(report.conserved(), "conservation broke on the clean path");
    assert!(report
        .conns
        .iter()
        .all(|c| c.outcome == ConnOutcome::Eof && c.frames > 0));

    // Lossless recording (Block policy): every frame and row.
    assert_eq!(stats.frames, fleet.total_frames());
    assert_eq!(stats.dropped, 0);
    assert_eq!(stats.rows as usize, golden.lines().count());

    // The edge emitted its lifecycle telemetry.
    assert_eq!(
        sink.events().filter(|e| e.kind() == "edge_conn").count(),
        24
    );
    assert_eq!(
        sink.events().filter(|e| e.kind() == "edge_serve").count(),
        1
    );

    // And the store replays byte-identically at several shard counts.
    let replay = replay_fleet(&store, &serve_cfg, &[1, 4], &mut NoopSink).expect("replay");
    assert_eq!(replay.golden, golden, "stored golden == live golden");
    assert!(
        replay.all_match(),
        "replay diverged at shard counts {:?}",
        replay.mismatches()
    );
}

/// UDP ingestion: every datagram is decoded standalone and served.
#[test]
fn udp_datagrams_are_decoded_and_conserved() {
    let fleet = EncodedFleet::generate(&FleetConfig {
        n_clients: 3,
        duration: 2 * SECOND,
        step: 50 * MILLISECOND,
        base_seed: 4242,
        ..FleetConfig::default()
    });
    let total = fleet.total_frames();
    let edge = Edge::bind(&ServeConfig::default(), &EdgeConfig::default(), None).expect("bind");
    let sent =
        mobisense_edge::send_datagrams_udp(edge.udp_addr(), &fleet.streams).expect("send udp");
    assert_eq!(sent, total);
    // Loopback UDP with a tiny payload volume: nothing can drop, but
    // delivery is asynchronous — wait until the reactor has them all.
    wait_for(&edge, Duration::from_secs(30), |s| s.frames >= total);
    let (_decisions, report) = edge.finish(&mut NoopSink).expect("finish");
    assert_eq!(report.stats.datagrams, total);
    assert_eq!(report.stats.frames, total);
    assert_eq!(report.serve.frames_processed, total);
    assert!(report.conserved());
}

/// A connection over its frame quota is condemned: the overflow frames
/// are counted rejected (never enqueued, never lost) and the socket is
/// closed with a `rejected` outcome.
#[test]
fn frame_quota_condemns_connection_and_conserves() {
    let edge_cfg = EdgeConfig {
        frame_quota: 3,
        ..EdgeConfig::default()
    };
    let edge = Edge::bind(&ServeConfig::default(), &edge_cfg, None).expect("bind");
    let mut sock = TcpStream::connect(edge.tcp_addr()).expect("connect");
    let mut bytes = Vec::new();
    for seq in 0..10 {
        obs(1, seq).encode_into(&mut bytes);
    }
    sock.write_all(&bytes).expect("write");
    sock.shutdown(Shutdown::Write).expect("half-close");
    // The edge closes the socket at condemnation; read to EOF/reset.
    let mut drain = [0u8; 16];
    while matches!(sock.read(&mut drain), Ok(n) if n > 0) {}
    drop(sock);

    wait_for(&edge, Duration::from_secs(30), |s| {
        s.conns_accepted >= 1 && s.conns_active == 0
    });
    let (decisions, report) = edge.finish(&mut NoopSink).expect("finish");
    assert!(report.conserved(), "quota path must not lose frames");
    assert!(report.stats.frames_rejected >= 1, "overflow was rejected");
    assert!(
        report.serve.frames_processed <= 3,
        "quota bounds processing"
    );
    assert_eq!(
        report.stats.frames,
        report.serve.frames_processed + report.stats.frames_rejected
    );
    assert_eq!(report.conns.len(), 1);
    assert_eq!(report.conns[0].outcome, ConnOutcome::Rejected);
    assert!(decisions.len() <= 3);
}

/// A connection whose buffered, undecodable bytes exceed the cap is
/// closed as oversize; the bytes are accounted truncated, not lost.
#[test]
fn oversize_pending_buffer_closes_connection() {
    let edge_cfg = EdgeConfig {
        read_buf_cap: 128,
        ..EdgeConfig::default()
    };
    let edge = Edge::bind(&ServeConfig::default(), &edge_cfg, None).expect("bind");
    let mut sock = TcpStream::connect(edge.tcp_addr()).expect("connect");
    // A valid header promising a 255-float digest (1048 bytes total),
    // then silence: the pending buffer can only grow.
    let full = ObsFrame {
        digest: vec![1.0; 255],
        ..obs(9, 0)
    }
    .encode();
    sock.write_all(&full[..200]).expect("write partial frame");

    wait_for(&edge, Duration::from_secs(30), |s| {
        s.conns_accepted >= 1 && s.conns_active == 0
    });
    drop(sock);
    let (_decisions, report) = edge.finish(&mut NoopSink).expect("finish");
    assert_eq!(report.conns.len(), 1);
    assert_eq!(report.conns[0].outcome, ConnOutcome::Oversize);
    assert_eq!(report.stats.frames, 0);
    assert_eq!(report.truncated_bytes, 200);
    assert!(report.conserved());
}

/// Corruption on a live socket: the assembler skips the garbage,
/// resynchronizes on the next magic pair, and both flanking frames are
/// served.
#[test]
fn corrupt_bytes_resync_on_a_live_socket() {
    let edge = Edge::bind(&ServeConfig::default(), &EdgeConfig::default(), None).expect("bind");
    let mut sock = TcpStream::connect(edge.tcp_addr()).expect("connect");
    let mut bytes = obs(5, 0).encode();
    bytes.extend_from_slice(&[0xFF; 16]);
    bytes.extend_from_slice(&obs(5, 1).encode());
    sock.write_all(&bytes).expect("write");
    drop(sock);

    wait_for(&edge, Duration::from_secs(30), |s| {
        s.conns_accepted >= 1 && s.conns_active == 0
    });
    let (_decisions, report) = edge.finish(&mut NoopSink).expect("finish");
    assert_eq!(report.stats.frames, 2, "both flanking frames decoded");
    assert_eq!(report.stats.resyncs, 1);
    assert_eq!(report.serve.frames_processed, 2);
    assert!(report.conserved());
}

/// CI-sized soak: modest concurrency, tiny shedding queues, in-process
/// senders. Asserts the conservation invariant end to end.
#[test]
fn socket_soak_smoke() {
    let fleet = EncodedFleet::generate(&FleetConfig {
        n_clients: 64,
        duration: SECOND,
        step: 100 * MILLISECOND,
        base_seed: 77,
        ..FleetConfig::default()
    });
    let serve_cfg = ServeConfig {
        queue_capacity: 4,
        overflow: OverflowPolicy::ShedOldestPerClient,
        ..ServeConfig::default()
    };
    let (_decisions, report) = serve_sockets(
        &serve_cfg,
        &EdgeConfig::default(),
        &fleet.streams,
        32,
        &mut NoopSink,
    )
    .expect("socket serve");
    assert_eq!(report.stats.frames, fleet.total_frames());
    assert_eq!(report.stats.conns_accepted, 64);
    assert!(report.conserved(), "conservation broke under shedding");
    assert_eq!(
        report.serve.frames_processed + report.serve.shed,
        fleet.total_frames()
    );
}

struct LoadChild {
    child: Child,
    stdout: BufReader<std::process::ChildStdout>,
}

impl LoadChild {
    fn spawn(addr: &str, n_conns: u32, frames: u32, client_base: u32) -> LoadChild {
        let mut child = Command::new(env!("CARGO_BIN_EXE_edge_load"))
            .args([
                addr,
                &n_conns.to_string(),
                &frames.to_string(),
                &client_base.to_string(),
            ])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .spawn()
            .expect("spawn edge_load");
        let stdout = BufReader::new(child.stdout.take().expect("child stdout"));
        LoadChild { child, stdout }
    }

    fn expect_line(&mut self, want: &str) {
        let mut line = String::new();
        let n = self.stdout.read_line(&mut line).expect("child stdout");
        assert!(n > 0, "edge_load exited before printing {want:?}");
        assert_eq!(line.trim(), want);
    }

    fn send_line(&mut self, line: &str) {
        let stdin = self.child.stdin.as_mut().expect("child stdin");
        writeln!(stdin, "{line}").expect("child stdin write");
        stdin.flush().expect("child stdin flush");
    }
}

/// The overload soak: ≥10k concurrent loopback connections (client
/// fds held by child processes to stay inside the fd budget), tiny
/// shedding queues, conservation asserted exactly —
/// `accepted == processed + shed + rejected` with `shed > 0`.
#[test]
fn soak_10k_connections_conserve_under_overload() {
    const CHILDREN: u32 = 5;
    const CONNS_PER_CHILD: u32 = 2048;
    const FRAMES_PER_CONN: u32 = 4;
    const TOTAL_CONNS: u64 = (CHILDREN * CONNS_PER_CHILD) as u64;
    const TOTAL_FRAMES: u64 = TOTAL_CONNS * FRAMES_PER_CONN as u64;

    let serve_cfg = ServeConfig {
        queue_capacity: 4,
        overflow: OverflowPolicy::ShedOldestPerClient,
        ..ServeConfig::default()
    };
    let edge_cfg = EdgeConfig::default();
    let edge = Edge::bind(&serve_cfg, &edge_cfg, None).expect("bind");
    let addr = edge.tcp_addr().to_string();

    let mut children: Vec<LoadChild> = (0..CHILDREN)
        .map(|i| {
            LoadChild::spawn(
                &addr,
                CONNS_PER_CHILD,
                FRAMES_PER_CONN,
                1 + i * CONNS_PER_CHILD,
            )
        })
        .collect();
    for c in children.iter_mut() {
        c.expect_line("ready");
    }
    // Every connection is up and held open: peak concurrency is now.
    let stats = wait_for(&edge, Duration::from_secs(300), |s| {
        s.conns_active >= TOTAL_CONNS
    });
    assert!(stats.conns_peak >= 10_000, "peak {:?}", stats.conns_peak);
    assert_eq!(stats.conns_accepted, TOTAL_CONNS);

    for c in children.iter_mut() {
        c.send_line("go");
    }
    for c in children.iter_mut() {
        c.expect_line("done");
    }
    for c in children.iter_mut() {
        let status = c.child.wait().expect("child wait");
        assert!(status.success(), "edge_load failed: {status}");
    }

    let (_decisions, report) = edge.finish(&mut NoopSink).expect("finish");
    assert_eq!(report.stats.frames, TOTAL_FRAMES, "every frame decoded");
    assert_eq!(report.stats.conns_accepted, TOTAL_CONNS);
    assert!(
        report.conserved(),
        "conservation broke: frames {} != processed {} + shed {} + rejected {}",
        report.stats.frames,
        report.serve.frames_processed,
        report.serve.shed,
        report.stats.frames_rejected
    );
    assert!(
        report.serve.shed > 0,
        "tiny queues under a 10k burst must shed"
    );
    assert_eq!(report.conns.len() as u64, TOTAL_CONNS);
    assert!(report
        .conns
        .iter()
        .all(|c| c.outcome == ConnOutcome::Eof && c.frames == FRAMES_PER_CONN as u64));
}

/// Kill-mid-session salvage: a recorded socket session whose store is
/// torn mid-record (the crash leaves the last segment unsealed and
/// truncated) still recovers a **verified prefix** — per client, the
/// salvaged frames are exactly the stream's first k frames, bit-equal.
#[test]
fn killed_socket_session_salvages_verified_prefix() {
    let dir = fresh_dir("kill");
    let fleet = EncodedFleet::generate(&FleetConfig {
        n_clients: 24,
        duration: SECOND,
        step: 50 * MILLISECOND,
        base_seed: 909,
        ..FleetConfig::default()
    });
    let total = fleet.total_frames();
    let store = StoreConfig::new(&dir).with_target_segment_bytes(8 << 10);
    let rec = spawn_flight_recorder(
        store,
        RecordingConfig {
            capacity: 1024,
            policy: RecordPolicy::Block,
        },
    )
    .expect("spawn recorder");
    let handle = rec.handle();

    let edge = Edge::bind(
        &ServeConfig::default(),
        &EdgeConfig::default(),
        Some(handle),
    )
    .expect("bind");
    mobisense_edge::send_streams_tcp(edge.tcp_addr(), &fleet.streams, 0).expect("send");
    let (_decisions, report) = edge.finish(&mut NoopSink).expect("finish");
    assert_eq!(report.stats.frames, total);
    let (summary, stats) = rec.finish().expect("recorder finish");
    assert_eq!(stats.frames, total);
    assert_eq!(stats.dropped, 0);
    assert!(summary.segments.len() > 1, "need multiple segments");

    // The kill: the last segment's seal rename never became durable
    // and its tail write was torn mid-record.
    let last = summary.segments.last().expect("segments");
    let reverted = dir.join(format!("seg-{:08}.open", last.id));
    std::fs::rename(&last.path, &reverted).expect("simulate lost rename");
    let torn = std::fs::metadata(&reverted).expect("meta").len() / 2;
    let f = std::fs::OpenOptions::new()
        .write(true)
        .open(&reverted)
        .expect("open tail");
    f.set_len(torn).expect("truncate mid-record");
    drop(f);

    let reader = TraceReader::open(&dir).expect("open");
    let rec = reader.recover().expect("recover");
    assert_eq!(rec.tail_segments, 1, "the torn segment reads as a tail");
    assert!(rec.skipped.is_empty(), "sealed segments are intact");
    let salvaged = rec.frames.len() as u64;
    assert!(salvaged > 0, "something salvaged");
    assert!(salvaged < total, "the torn tail lost frames");

    // Verified prefix, per client: frame k of the salvage is bit-equal
    // to frame k of the client's original stream, with no gaps.
    let mut next_seq = std::collections::BTreeMap::<u32, u32>::new();
    for frame in &rec.frames {
        let k = next_seq.entry(frame.client_id).or_insert(0);
        let stream = fleet
            .streams
            .iter()
            .find(|s| s.client_id == frame.client_id)
            .expect("salvaged frame from a known client");
        assert_eq!(frame.seq, *k, "client {} has a gap", frame.client_id);
        assert_eq!(
            frame,
            &stream.obs(*k as usize),
            "salvaged frame diverges from the original"
        );
        *k += 1;
    }
}
