//! Cross-crate tests for crash-safe streaming compaction: a child
//! process killed (aborted, not unwound) at every promotion-protocol
//! step must leave a fully recoverable store; randomly generated
//! mixed-kind stores must compact order-preservingly, idempotently and
//! within the O(segment) resident-byte budget; and the golden
//! 256-client fleet must replay byte-identically after compaction.

use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::atomic::{AtomicU64, Ordering};

use mobisense_core::pipeline::{PipelineConfig, PipelineSession};
use mobisense_serve::fleet::{EncodedFleet, FleetConfig};
use mobisense_serve::service::ServeConfig;
use mobisense_serve::wire::ObsFrame;
use mobisense_session::SessionSnapshot;
use mobisense_store::segment::scan_segment;
use mobisense_store::{
    compact, record_fleet, replay_fleet, CrashPoint, RecordKind, StoreConfig, TraceReader,
    TraceWriter,
};
use mobisense_telemetry::NoopSink;
use mobisense_util::units::{MILLISECOND, SECOND};
use proptest::prelude::*;
use proptest::strategy::StrategyExt;

fn fresh_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "mobisense-xtest-compact-{}-{tag}-{n}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create test dir");
    dir
}

fn frame(client: u32, seq: u32, at_step: u64) -> ObsFrame {
    ObsFrame {
        client_id: client,
        seq,
        at: 500 * at_step,
        distance_m: 3.0 + f64::from(client % 9),
        digest: vec![0.25; 6],
    }
}

/// An encoded session snapshot whose pipeline state varies with
/// `seed`, so distinct snapshots have distinct bytes on disk.
fn snapshot_for(client: u32, seed: u64) -> Vec<u8> {
    SessionSnapshot {
        client_id: client,
        last_emitted: None,
        state: PipelineSession::new(PipelineConfig::default(), seed).snapshot(),
    }
    .encode()
    .expect("encode snapshot")
}

/// The store's full record stream — every record of every kind, in
/// global order, as `(kind, payload)` pairs. This is the quantity
/// compaction must preserve exactly: replay output is a pure function
/// of it, and segment boundaries are not part of it.
fn record_stream(dir: &Path) -> Vec<(RecordKind, Vec<u8>)> {
    let reader = TraceReader::open(dir).expect("open");
    let mut stream = Vec::new();
    for meta in reader.segments() {
        assert!(meta.sealed, "segment {} not sealed", meta.id);
        let bytes = std::fs::read(&meta.path).expect("read segment");
        let scan = scan_segment(&bytes).expect("scan segment");
        assert!(scan.error.is_none(), "segment {} damaged", meta.id);
        for record in &scan.records {
            stream.push((record.kind, record.payload.to_vec()));
        }
    }
    stream
}

/// The sealed segment files' raw bytes, in id order. Two stores with
/// equal lists are the same store, boundaries included.
fn segment_bytes(dir: &Path) -> Vec<Vec<u8>> {
    TraceReader::open(dir)
        .expect("open")
        .segments()
        .iter()
        .map(|m| std::fs::read(&m.path).expect("read segment"))
        .collect()
}

/// A fragmented mixed-kind store: frames, decision rows and session
/// snapshots interleaved across many small segments.
fn build_mixed_store(dir: &Path) {
    let cfg = StoreConfig::new(dir).with_target_segment_bytes(2048);
    let mut w = TraceWriter::create(cfg).expect("create");
    for i in 0..60u32 {
        w.append_frame(&frame(i % 7, i / 7, u64::from(i) + 1))
            .expect("frame");
        if i % 8 == 7 {
            w.append_decision_row(&format!("{},{i},hold", i % 7))
                .expect("row");
        }
        if i % 20 == 19 {
            let snap = snapshot_for(i % 3, u64::from(i));
            w.append_session_snapshot(&snap).expect("snapshot");
        }
    }
    w.finish().expect("finish");
}

/// Kill-mid-compact matrix: a separate process runs the compactor and
/// **aborts** — no destructors, no buffered flush on drop — at each
/// protocol step in turn. After every kill the store must be complete
/// (strict read returns every record, recovery reports nothing lost),
/// and a rerun must converge with no stale files left.
#[test]
fn a_child_killed_at_every_protocol_step_leaves_a_complete_store() {
    for point in CrashPoint::ALL {
        let dir = fresh_dir(&format!("kill-{}", point.as_str()));
        build_mixed_store(&dir);
        let expected = record_stream(&dir);
        assert!(expected.len() > 60, "mixed store expected");

        let status = Command::new(env!("CARGO_BIN_EXE_compact_crash"))
            .arg(&dir)
            .arg(point.as_str())
            .arg((1usize << 20).to_string())
            .status()
            .expect("spawn compact_crash");
        assert!(
            !status.success(),
            "child must die at {point:?}, got {status:?}"
        );
        #[cfg(unix)]
        assert!(
            status.code().is_none(),
            "child must abort (die by signal) at {point:?}, got {status:?}"
        );

        // Either the old or the new generation is fully current.
        let r = TraceReader::open(&dir).expect("open after kill");
        r.read_frames()
            .unwrap_or_else(|e| panic!("strict read failed after kill at {point:?}: {e}"));
        let rec = r.recover().expect("recover");
        assert!(
            rec.complete(),
            "recovery incomplete after kill at {point:?}"
        );
        assert_eq!(
            record_stream(&dir),
            expected,
            "record stream changed after kill at {point:?}"
        );

        // Rerunning to completion converges and sweeps every leftover.
        let status = Command::new(env!("CARGO_BIN_EXE_compact_crash"))
            .arg(&dir)
            .arg("none")
            .arg((1usize << 20).to_string())
            .status()
            .expect("spawn compact_crash rerun");
        assert!(status.success(), "rerun failed after {point:?}: {status:?}");
        let r = TraceReader::open(&dir).expect("open after rerun");
        assert!(r.generation() > 0, "rerun promoted a new generation");
        assert_eq!(r.stale_files(), 0, "rerun left garbage after {point:?}");
        assert_eq!(record_stream(&dir), expected, "rerun changed the stream");
    }
}

/// One record of a randomly generated mixed-kind store.
#[derive(Clone, Debug)]
enum Op {
    Frame(u32),
    Row(u32),
    Snapshot(u32, u64),
}

/// A weighted mixed-kind op: mostly frames, some decision rows, the
/// occasional session snapshot (the vendored proptest shim has no
/// `prop_oneof`, so the weighting rides on an integer selector).
fn arb_op() -> impl Strategy<Value = Op> {
    (0u32..9, 0u64..250).prop_map(|(kind, extra)| {
        let client = (extra % 5) as u32;
        match kind {
            0..=5 => Op::Frame(client),
            6 | 7 => Op::Row(client),
            _ => Op::Snapshot(client % 3, extra / 5),
        }
    })
}

proptest! {
    /// Streaming compaction over an arbitrary mixed-kind store is
    /// order-preserving (the full interleaved record stream survives
    /// byte for byte), resident-bounded, and idempotent (a second pass
    /// reproduces the first's output files exactly).
    #[test]
    fn compaction_preserves_any_mixed_record_stream(
        ops in prop::collection::vec(arb_op(), 1..60),
        write_target in 512usize..4096,
        compact_target in 1024usize..(64 << 10),
    ) {
        let dir = fresh_dir("prop");
        let mut w = TraceWriter::create(
            StoreConfig::new(&dir).with_target_segment_bytes(write_target),
        ).expect("create");
        let mut next_seq = [0u32; 5];
        for (i, op) in ops.iter().enumerate() {
            match op {
                Op::Frame(client) => {
                    let seq = next_seq[*client as usize];
                    next_seq[*client as usize] += 1;
                    w.append_frame(&frame(*client, seq, i as u64 + 1)).expect("frame");
                }
                Op::Row(client) => {
                    w.append_decision_row(&format!("{client},{i},steer")).expect("row");
                }
                Op::Snapshot(client, seed) => {
                    w.append_session_snapshot(&snapshot_for(*client, *seed)).expect("snap");
                }
            }
        }
        w.finish().expect("finish");
        let expected = record_stream(&dir);
        let max_input = TraceReader::open(&dir)
            .expect("open")
            .segments()
            .iter()
            .map(|m| m.bytes as usize)
            .max()
            .unwrap_or(0);

        let cfg = StoreConfig::new(&dir).with_target_segment_bytes(compact_target);
        let report = compact(&cfg, &mut NoopSink).expect("compact");
        prop_assert_eq!(report.records, ops.len() as u64);
        prop_assert_eq!(report.generation, 1);
        // The streaming contract: resident bytes never exceed twice
        // the larger of the output target and the biggest input
        // segment (inputs can be bigger than a tiny compact target).
        prop_assert!(
            report.peak_resident_bytes <= 2 * compact_target.max(max_input),
            "peak {} over budget (target {compact_target}, max input {max_input})",
            report.peak_resident_bytes
        );
        prop_assert_eq!(record_stream(&dir), expected.clone());

        // Idempotent: re-compacting reproduces the same output files.
        let first_files = segment_bytes(&dir);
        let second = compact(&cfg, &mut NoopSink).expect("re-compact");
        prop_assert_eq!(second.records, ops.len() as u64);
        prop_assert_eq!(second.generation, 2);
        prop_assert_eq!(segment_bytes(&dir), first_files);
        prop_assert_eq!(record_stream(&dir), expected);
    }
}

/// The golden-regression contract survives compaction: a recorded
/// 256-client fleet, compacted, still replays byte-identically through
/// 1, 2, 4 and 8 shards — and the pass stays within its resident
/// budget while doing it.
#[test]
fn golden_256_client_replay_is_identical_after_compaction() {
    let dir = fresh_dir("golden");
    let fleet = EncodedFleet::generate(&FleetConfig {
        n_clients: 256,
        duration: 2 * SECOND,
        step: 50 * MILLISECOND,
        base_seed: 2014,
        ..FleetConfig::default()
    });
    let store = StoreConfig::new(&dir).with_target_segment_bytes(256 << 10);
    let serve_cfg = ServeConfig::default();
    let rec = record_fleet(&store, &serve_cfg, &fleet, &mut NoopSink).expect("record");
    let before = TraceReader::open(&dir).expect("open").segments().len();
    assert!(before > 2, "fragmented store expected, got {before}");

    let target = 2usize << 20;
    let merged = StoreConfig::new(&dir).with_target_segment_bytes(target);
    let report = compact(&merged, &mut NoopSink).expect("compact");
    assert_eq!(report.frames, rec.frames);
    assert!(report.segments_after < before);
    assert!(
        report.peak_resident_bytes <= 2 * target,
        "peak {} over 2x target {target}",
        report.peak_resident_bytes
    );

    let replay = replay_fleet(&store, &serve_cfg, &[1, 2, 4, 8], &mut NoopSink).expect("replay");
    assert_eq!(replay.golden, rec.golden, "stored golden log changed");
    assert!(
        replay.all_match(),
        "replay diverged after compaction at shard counts {:?}",
        replay.mismatches()
    );
}
