//! Cross-crate ops-observability tests: live snapshot JSONL from a
//! real serving run round-trips losslessly with sane invariants, the
//! stall watchdog is deterministic and fires on a genuinely gated
//! shard, stage tracing never perturbs the decision log, and the bench
//! regression gate catches what it exists to catch.

use std::sync::Arc;
use std::time::Duration;

use mobisense_bench::report::{compare, BenchReport};
use mobisense_serve::fleet::{EncodedFleet, FleetConfig};
use mobisense_serve::service::{decision_log_csv, serve_fleet, ServeConfig};
use mobisense_serve::{
    ObsFrame, OpsMonitor, OverflowPolicy, ShardQueue, SnapshotPolicy, StallDetector, Ticket,
    WorkItem,
};
use mobisense_telemetry::{parse_snapshots, Event, NoopSink, Snapshot, Stage, Telemetry};
use mobisense_util::units::{MILLISECOND, SECOND};

fn small_fleet() -> EncodedFleet {
    EncodedFleet::generate(&FleetConfig {
        n_clients: 8,
        duration: 4 * SECOND,
        step: 20 * MILLISECOND,
        base_seed: 77,
        ..FleetConfig::default()
    })
}

/// A serving run with the ops monitor attached yields a JSONL stream
/// where every block parses, every metric appears exactly once per
/// block, histogram quantiles are monotone, and re-serializing a parsed
/// snapshot reproduces it bit-for-bit.
#[test]
fn live_snapshot_stream_round_trips_with_unique_monotone_metrics() {
    let fleet = small_fleet();
    let cfg = ServeConfig {
        stage_sampling: 4,
        snapshot: Some(SnapshotPolicy {
            interval: Duration::from_millis(5),
            stall_intervals: 2,
        }),
        ..ServeConfig::default()
    };
    let (_decisions, report) = serve_fleet(&cfg, &fleet, &mut NoopSink);
    assert!(
        !report.snapshots.is_empty(),
        "the monitor takes a final snapshot even on a fast run"
    );

    let stream = report.snapshots.concat();
    let snaps = parse_snapshots(&stream).expect("live stream parses");
    assert_eq!(snaps.len(), report.snapshots.len());
    for snap in &snaps {
        // `metrics()` counts each map's entries; the parser enforced
        // the header's declared count and rejected duplicates, so
        // together these say: every metric exactly once.
        assert!(snap.metrics() > 0, "snapshot seq {} is empty", snap.seq);
        for (name, h) in &snap.histograms {
            assert!(
                h.min <= h.p50 && h.p50 <= h.p90 && h.p90 <= h.p99 && h.p99 <= h.max,
                "quantiles of {name} not monotone: {h:?}"
            );
        }
        // Lossless round-trip: serialize the parsed value again.
        let back = parse_snapshots(&snap.to_jsonl()).expect("re-parses");
        assert_eq!(back, vec![snap.clone()]);
    }
    // Sequence numbers are 1-based and strictly increasing.
    for (i, snap) in snaps.iter().enumerate() {
        assert_eq!(snap.seq, i as u64 + 1);
    }

    // The end-of-run registry snapshots the same way: stage histograms
    // and serve counters all present, exactly once.
    let reg = report.registry();
    let end = Snapshot::capture(1, 0, &reg);
    assert!(end.counters.contains_key("serve.frames_processed"));
    assert!(end.histograms.contains_key("stage.total"));
    let back = parse_snapshots(&end.to_jsonl()).expect("registry snapshot parses");
    assert_eq!(back, vec![end]);
}

/// Stage tracing and the ops monitor are observers: with both enabled
/// the decision log stays byte-identical to the untraced run, while
/// traces fill the per-stage histograms and every monitor tick surfaces
/// as an [`Event::Snapshot`].
#[test]
fn observability_never_perturbs_the_decision_log() {
    let fleet = small_fleet();
    let plain = ServeConfig::default();
    let observed = ServeConfig {
        stage_sampling: 4,
        snapshot: Some(SnapshotPolicy {
            interval: Duration::from_millis(5),
            stall_intervals: 2,
        }),
        ..ServeConfig::default()
    };
    let (d_plain, _) = serve_fleet(&plain, &fleet, &mut NoopSink);
    let mut tel = Telemetry::new();
    let (d_observed, report) = serve_fleet(&observed, &fleet, &mut tel);
    assert_eq!(
        decision_log_csv(&d_plain),
        decision_log_csv(&d_observed),
        "observability changed the decision log"
    );
    assert!(report.stages.traces() > 0, "sampled traces were folded in");
    for stage in [
        Stage::Enqueue,
        Stage::Dequeue,
        Stage::Classify,
        Stage::Decide,
    ] {
        assert_eq!(
            report.stages.get(stage).count(),
            report.stages.traces(),
            "every trace passed {stage:?}"
        );
    }
    let snapshot_events = tel
        .events()
        .filter(|e| matches!(e, Event::Snapshot { .. }))
        .count();
    assert_eq!(snapshot_events, report.snapshots.len());
    assert!(
        tel.events().all(|e| !matches!(e, Event::Stall { .. })),
        "a healthy run must not flag stalls"
    );
}

/// The detector is a pure function of its input sequence: identical
/// sequences produce identical flag trains, and a flag requires both
/// frozen progress *and* pending work for the full window.
#[test]
fn stall_detector_is_deterministic_and_demands_backlog() {
    let ticks: Vec<Vec<(u64, u64)>> = vec![
        vec![(0, 3), (0, 0)],
        vec![(0, 3), (0, 0)],
        vec![(0, 3), (4, 2)],
        vec![(7, 0), (4, 2)],
        vec![(7, 0), (4, 2)],
    ];
    let drive = || {
        let mut d = StallDetector::new(2, 2);
        ticks.iter().map(|t| d.observe(t)).collect::<Vec<_>>()
    };
    let first = drive();
    assert_eq!(first, drive(), "same input, same flags");
    // Source 0 stalls at tick 2 (two frozen intervals with backlog);
    // source 1 idles backlog-free, then stalls at tick 5.
    assert_eq!(first[1], vec![(0, 2, 3)]);
    assert_eq!(first[4], vec![(1, 2, 2)]);
    assert!(first[0].is_empty() && first[2].is_empty() && first[3].is_empty());
}

/// A shard whose worker never runs is the deterministic stall: backlog
/// pinned, progress frozen. The monitor must flag it exactly once per
/// episode and keep snapshotting all the while.
#[test]
fn monitor_flags_a_deterministically_gated_shard() {
    let q = Arc::new(ShardQueue::new(16));
    for seq in 0..7 {
        let frame = ObsFrame {
            client_id: 1,
            seq,
            at: u64::from(seq),
            distance_m: 2.0,
            digest: vec![0.5; 4],
        };
        q.push(
            WorkItem::frame(Ticket::untraced(), frame),
            OverflowPolicy::Block,
        );
    }
    let monitor = OpsMonitor::spawn(
        vec![Arc::clone(&q)],
        None,
        SnapshotPolicy {
            interval: Duration::from_millis(2),
            stall_intervals: 2,
        },
    )
    .expect("spawn monitor");
    std::thread::sleep(Duration::from_millis(25));
    let out = monitor.stop();
    assert!(out.ticks >= 3, "monitor ticked {} times", out.ticks);
    let flags: Vec<_> = out
        .stalls
        .iter()
        .filter(|s| s.source == "shard-0")
        .collect();
    assert_eq!(flags.len(), 1, "one flag per episode: {:?}", out.stalls);
    assert_eq!(flags[0].backlog, 7);
    assert!(flags[0].intervals >= 2);
    let snaps = parse_snapshots(&out.snapshots.concat()).expect("parses");
    assert_eq!(snaps.len() as u64, out.ticks);
    assert_eq!(
        snaps.last().expect("non-empty").gauges["serve.queue.depth"],
        7.0
    );
    q.close();
}

/// The perf gate's contract, exercised through the report API exactly
/// as `bench_gate` uses it: a 20% drop on a 10%-tolerance metric is
/// flagged, an in-tolerance wobble is not, and schema drift or a
/// vanished metric fails loudly rather than passing silently.
#[test]
fn bench_gate_flags_synthetic_regression() {
    let mut base = BenchReport::new("xtest_gate");
    base.push("frames_per_sec", 100_000.0, true, 10.0);
    base.push("p99_ns", 800.0, false, 25.0);
    base.push("golden_match", 1.0, true, 0.0);

    let mut regressed = base.clone();
    regressed.push("frames_per_sec", 80_000.0, true, 10.0);
    let flagged = compare(&base, &regressed).expect("comparable");
    assert_eq!(flagged.len(), 1);
    assert_eq!(flagged[0].metric, "frames_per_sec");
    assert!((flagged[0].change_pct - 20.0).abs() < 1e-9);

    let mut wobble = base.clone();
    wobble.push("frames_per_sec", 95_000.0, true, 10.0);
    wobble.push("p99_ns", 950.0, false, 25.0);
    assert!(compare(&base, &wobble).expect("comparable").is_empty());

    // Exact-ratio metrics tolerate nothing.
    let mut broken = base.clone();
    broken.push("golden_match", 0.0, true, 0.0);
    assert_eq!(compare(&base, &broken).expect("comparable").len(), 1);

    let mut shrunk = base.clone();
    shrunk.metrics.remove("p99_ns");
    assert!(compare(&base, &shrunk).is_err(), "vanished metric is loud");

    let mut drifted = base.clone();
    drifted.schema_version += 1;
    assert!(compare(&base, &drifted).is_err(), "schema drift is loud");

    // And the on-disk form agrees with the in-memory one.
    let back = BenchReport::from_json(&base.to_json()).expect("parses");
    assert_eq!(back, base);
}
