//! Property-based tests on cross-crate invariants.

use mobisense_phy::airtime;
use mobisense_phy::csi::{csi_similarity, Csi};
use mobisense_phy::mcs::Mcs;
use mobisense_phy::per;
use mobisense_phy::tof::TofConfig;
use mobisense_util::{Cdf, DetRng, C64};
use proptest::prelude::*;

fn arb_mcs() -> impl Strategy<Value = Mcs> {
    prop::sample::select(Mcs::ladder())
}

proptest! {
    #[test]
    fn per_always_a_probability(
        snr in -30.0..60.0f64,
        mcs in arb_mcs(),
        bits in 64.0..65536.0f64,
        age in 0.0..0.1f64,
        coherence in 0.001..10.0f64,
    ) {
        let p = per::mpdu_error_prob_aged(snr, mcs, bits, age, coherence);
        prop_assert!((0.0..=1.0).contains(&p), "per={p}");
    }

    #[test]
    fn aged_snr_never_exceeds_input(
        snr in -10.0..50.0f64,
        age in 0.0..0.05f64,
        coherence in 0.001..10.0f64,
    ) {
        let aged = per::aged_snr_db(snr, age, coherence);
        prop_assert!(aged <= snr + 1e-9, "aged {aged} > input {snr}");
    }

    #[test]
    fn aging_monotone_in_age(
        snr in 0.0..50.0f64,
        coherence in 0.005..1.0f64,
        a1 in 0.0..0.02f64,
        delta in 0.0..0.02f64,
    ) {
        let e1 = per::aged_snr_db(snr, a1, coherence);
        let e2 = per::aged_snr_db(snr, a1 + delta, coherence);
        prop_assert!(e2 <= e1 + 1e-9);
    }

    #[test]
    fn airtime_monotone_in_mpdus(
        mcs in arb_mcs(),
        n in 1usize..63,
        payload in 100usize..1500,
    ) {
        let t1 = airtime::ampdu_exchange(mcs, n, payload);
        let t2 = airtime::ampdu_exchange(mcs, n + 1, payload);
        prop_assert!(t2 > t1);
    }

    #[test]
    fn aggregation_efficiency_increases(
        mcs in arb_mcs(),
        payload in 500usize..1500,
    ) {
        // payload bits per second of airtime grows with aggregation.
        let eff = |n: usize| {
            (n * payload * 8) as f64
                / (airtime::ampdu_exchange(mcs, n, payload) as f64 / 1e9)
        };
        prop_assert!(eff(16) > eff(1));
    }

    #[test]
    fn mpdus_for_limit_within_bounds(
        mcs in arb_mcs(),
        limit_ms in 1u64..12,
    ) {
        let n = airtime::mpdus_for_time_limit(mcs, 1500, limit_ms * 1_000_000);
        prop_assert!((1..=64).contains(&n));
        // The data portion must honour the limit (unless clamped to 1).
        if n > 1 {
            let t = airtime::data_duration(mcs, n, 1500);
            // One extra symbol of rounding slack per MPDU is acceptable.
            prop_assert!(t <= limit_ms * 1_000_000 + (n as u64) * airtime::SYMBOL);
        }
    }

    #[test]
    fn similarity_is_bounded_and_symmetric(seed in 0u64..5000) {
        let mut rng = DetRng::seed_from_u64(seed);
        let mut a = Csi::zeros(3, 2, 52);
        let mut b = Csi::zeros(3, 2, 52);
        for v in a.as_mut_slice() {
            *v = rng.complex_gaussian(1.0);
        }
        for v in b.as_mut_slice() {
            *v = rng.complex_gaussian(1.0);
        }
        let s_ab = csi_similarity(&a, &b);
        let s_ba = csi_similarity(&b, &a);
        prop_assert!((-1.0..=1.0).contains(&s_ab));
        prop_assert!((s_ab - s_ba).abs() < 1e-12);
        prop_assert!((csi_similarity(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn similarity_invariant_to_common_gain(
        seed in 0u64..5000,
        scale in 0.01..100.0f64,
    ) {
        let mut rng = DetRng::seed_from_u64(seed);
        let mut a = Csi::zeros(2, 1, 16);
        for v in a.as_mut_slice() {
            *v = rng.complex_gaussian(1.0);
        }
        let mut b = a.clone();
        for v in b.as_mut_slice() {
            *v = *v * scale;
        }
        prop_assert!((csi_similarity(&a, &b) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn tof_cycles_distance_roundtrip(d in 0.1..100.0f64) {
        let cfg = TofConfig::default();
        let c = cfg.cycles_for_distance(d);
        prop_assert!((cfg.distance_for_cycles(c) - d).abs() < 1e-9);
        prop_assert!(c > 0.0);
    }

    #[test]
    fn cdf_quantiles_are_monotone(mut xs in prop::collection::vec(-1e6..1e6f64, 1..200)) {
        xs.retain(|x| x.is_finite());
        prop_assume!(!xs.is_empty());
        let cdf = Cdf::from_samples(&xs);
        let mut last = f64::NEG_INFINITY;
        for i in 0..=10 {
            let q = cdf.quantile(i as f64 / 10.0).unwrap();
            prop_assert!(q >= last);
            last = q;
        }
    }

    #[test]
    fn oracle_rate_monotone_in_snr(
        s1 in -5.0..45.0f64,
        delta in 0.0..20.0f64,
    ) {
        let lo = per::oracle_mcs(s1, per::REF_MPDU_BITS);
        let hi = per::oracle_mcs(s1 + delta, per::REF_MPDU_BITS);
        prop_assert!(hi.rate_bps() >= lo.rate_bps());
    }

    #[test]
    fn complex_field_axioms(
        re1 in -100.0..100.0f64, im1 in -100.0..100.0f64,
        re2 in -100.0..100.0f64, im2 in -100.0..100.0f64,
    ) {
        let a = C64::new(re1, im1);
        let b = C64::new(re2, im2);
        // |a*b| = |a||b| and conj distributes over multiplication.
        prop_assert!(((a * b).abs() - a.abs() * b.abs()).abs() < 1e-6);
        let lhs = (a * b).conj();
        let rhs = a.conj() * b.conj();
        prop_assert!((lhs - rhs).abs() < 1e-9);
    }
}
