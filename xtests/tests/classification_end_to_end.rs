//! End-to-end classification: the whole pipeline (geometry -> channel ->
//! CSI/ToF measurements -> classifier) against ground truth, across all
//! scenario kinds.

use mobisense_core::pipeline::{run_classification, Confusion, PipelineConfig};
use mobisense_core::scenario::{Scenario, ScenarioConfig, ScenarioKind};
use mobisense_mobility::movers::EnvIntensity;
use mobisense_mobility::{Direction, MobilityMode};
use mobisense_util::units::SECOND;
use mobisense_util::Vec2;

fn accuracy(kind: ScenarioKind, seeds: std::ops::Range<u64>, secs: u64) -> f64 {
    let cfg = PipelineConfig::default();
    let mut conf = Confusion::new();
    for seed in seeds {
        let mut sc = Scenario::new(kind, seed);
        conf.add_all(&run_classification(&mut sc, &cfg, secs * SECOND, seed));
    }
    conf.accuracy(kind.true_mode()).unwrap_or(0.0)
}

#[test]
fn static_clients_classified_static() {
    let acc = accuracy(ScenarioKind::Static, 100..105, 30);
    assert!(acc > 0.85, "static accuracy {acc}");
}

#[test]
fn cafeteria_classified_environmental() {
    let acc = accuracy(
        ScenarioKind::Environmental(EnvIntensity::Strong),
        110..116,
        30,
    );
    assert!(acc > 0.6, "environmental accuracy {acc}");
}

#[test]
fn gestures_classified_micro() {
    let acc = accuracy(ScenarioKind::Micro, 120..126, 30);
    assert!(acc > 0.75, "micro accuracy {acc}");
}

#[test]
fn long_radial_walks_classified_macro_with_direction() {
    // The paper's Table 1 macro methodology: radial walks in a hall.
    let cfg_s = ScenarioConfig {
        room_hi: Vec2::new(56.0, 36.0),
        ap_pos: Vec2::new(28.0, 18.0),
        radial_range: (22.0, 26.0),
        ..ScenarioConfig::default()
    };
    let cfg = PipelineConfig::default();
    let mut total = 0u64;
    let mut ok = 0u64;
    let mut dir_ok = 0u64;
    let mut dir_total = 0u64;
    for (kind, dir) in [
        (ScenarioKind::MacroAway, Direction::Away),
        (ScenarioKind::MacroTowards, Direction::Towards),
    ] {
        for seed in 130..136u64 {
            let mut sc = Scenario::with_config(kind, cfg_s.clone(), seed);
            for r in run_classification(&mut sc, &cfg, 20 * SECOND, seed) {
                if r.truth.mode != MobilityMode::Macro {
                    continue;
                }
                total += 1;
                if r.decision.mode == MobilityMode::Macro {
                    ok += 1;
                    dir_total += 1;
                    if r.decision.direction == Some(dir) {
                        dir_ok += 1;
                    }
                }
            }
        }
    }
    let acc = ok as f64 / total as f64;
    assert!(acc > 0.75, "macro accuracy {acc} ({ok}/{total})");
    let dir_acc = dir_ok as f64 / dir_total.max(1) as f64;
    assert!(dir_acc > 0.95, "direction accuracy {dir_acc}");
}

#[test]
fn orbiting_the_ap_is_the_documented_blind_spot() {
    // Paper section 9: circular motion around the AP shows no ToF trend
    // and must be (mis)classified as micro-mobility.
    let cfg = PipelineConfig::default();
    let mut micro = 0u64;
    let mut total = 0u64;
    for seed in 140..143u64 {
        let mut sc = Scenario::new(ScenarioKind::Orbit, seed);
        for r in run_classification(&mut sc, &cfg, 30 * SECOND, seed) {
            total += 1;
            if r.decision.mode == MobilityMode::Micro {
                micro += 1;
            }
        }
    }
    assert!(
        micro as f64 / total as f64 > 0.6,
        "orbit should read as micro: {micro}/{total}"
    );
}

#[test]
fn whole_pipeline_is_deterministic() {
    let cfg = PipelineConfig::default();
    let run = |seed| {
        let mut sc = Scenario::new(ScenarioKind::MacroRandom, seed);
        run_classification(&mut sc, &cfg, 15 * SECOND, seed)
            .iter()
            .map(|r| (r.at, r.decision))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(7), run(7));
    assert_ne!(run(7), run(8), "different seeds must differ");
}

#[test]
fn tof_measurement_is_demand_driven() {
    // A static client must not keep the ToF machinery running (the
    // Figure 5 design point: ToF costs NULL-frame airtime).
    use mobisense_core::classifier::{ClassifierConfig, MobilityClassifier};
    let mut sc = Scenario::new(ScenarioKind::Static, 150);
    let mut cl = MobilityClassifier::new(ClassifierConfig::default());
    let mut t = 0u64;
    while t <= 20 * SECOND {
        let obs = sc.observe(t);
        cl.on_frame_csi(t, &obs.csi);
        t += 100 * mobisense_util::units::MILLISECOND;
    }
    assert!(!cl.tof_measurement_active());
    assert_eq!(cl.current().unwrap().mode, MobilityMode::Static);
}
