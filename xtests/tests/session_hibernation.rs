//! Cross-crate session-hibernation tests: the hibernate → restore ≡
//! never-hibernated invariant through the trace store (golden replay
//! with hibernation toggled, at several shard counts), live shard
//! rebalancing over disk-backed pagers, and crash recovery of
//! paged-out sessions.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use mobisense_serve::fleet::{EncodedFleet, FleetConfig};
use mobisense_serve::queue::Ticket;
use mobisense_serve::service::{
    decision_log_csv, serve_fleet, BoxedPager, ServeConfig, ShardEngine,
};
use mobisense_session::{HibernationConfig, RetirePolicy, SessionSnapshot, SnapshotPager};
use mobisense_store::{record_fleet, replay_fleet, StoreConfig, StorePager, TraceReader};
use mobisense_telemetry::NoopSink;
use mobisense_util::units::{MILLISECOND, SECOND};

fn fresh_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "mobisense-xtest-hib-{}-{tag}-{n}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create test dir");
    dir
}

fn fleet_64() -> EncodedFleet {
    EncodedFleet::generate(&FleetConfig {
        n_clients: 64,
        duration: 2 * SECOND,
        step: 50 * MILLISECOND,
        base_seed: 814,
        ..FleetConfig::default()
    })
}

/// An aggressive retirement policy: tiny idle window plus a hot-set
/// cap far below the client count, so sessions thrash through
/// hibernate / fault-in constantly.
fn thrash(base: ServeConfig) -> ServeConfig {
    ServeConfig {
        hibernation: HibernationConfig {
            idle_after: Some(100 * MILLISECOND),
            max_hot: Some(8),
            policy: RetirePolicy::Hibernate,
        },
        ..base
    }
}

/// One disk-backed pager per shard, each in its own subdirectory of
/// `dir` (shards may not share a segment store).
fn store_pagers(dir: &std::path::Path, n_shards: usize) -> Vec<BoxedPager> {
    (0..n_shards)
        .map(|shard| {
            let cfg = StoreConfig::new(dir.join(format!("shard-{shard}")));
            Box::new(StorePager::create(cfg).expect("pager creates")) as BoxedPager
        })
        .collect()
}

/// The headline invariant through disk: a fleet recorded by a live
/// **non-hibernating** run replays byte-identically through
/// hibernating services at several shard counts — and a live
/// **hibernating** run records the same golden log in the first place.
#[test]
fn hibernation_golden_replay_across_shard_counts() {
    let fleet = fleet_64();
    let base_cfg = ServeConfig::default();

    let dir = fresh_dir("golden-base");
    let store = StoreConfig::new(&dir).with_target_segment_bytes(1 << 20);
    let rec = record_fleet(&store, &base_cfg, &fleet, &mut NoopSink).expect("record");

    // Replay the stored frames through hibernating services: 1 shard
    // (pure single-stream) and 4 shards (cross-shard merge), both
    // thrashing the hot set. The decision log must not move a byte.
    let replay =
        replay_fleet(&store, &thrash(base_cfg.clone()), &[1, 4], &mut NoopSink).expect("replay");
    assert_eq!(replay.golden, rec.golden);
    assert!(
        replay.all_match(),
        "hibernating replay diverged at shard counts {:?}",
        replay.mismatches()
    );

    // And the converse: a live hibernating run produces the same
    // golden log a non-hibernating one does.
    let dir_hib = fresh_dir("golden-hib");
    let store_hib = StoreConfig::new(&dir_hib).with_target_segment_bytes(1 << 20);
    let rec_hib =
        record_fleet(&store_hib, &thrash(base_cfg), &fleet, &mut NoopSink).expect("record");
    assert_eq!(
        rec_hib.golden, rec.golden,
        "live hibernation changed the recorded golden log"
    );
}

/// Hibernation over disk-backed pagers: every page-out lands in a
/// per-shard segment store as a checksummed snapshot record, the
/// decision log is untouched, and after the run (workers gone, pager
/// tails unsealed — the crash shape) `StorePager::recover` gets every
/// paged-out session back.
#[test]
fn disk_paged_hibernation_is_invisible_and_recoverable() {
    let fleet = fleet_64();
    let (golden, _) = serve_fleet(&ServeConfig::default(), &fleet, &mut NoopSink);

    let cfg = thrash(ServeConfig::default());
    let dir = fresh_dir("disk-paged");
    let engine =
        ShardEngine::spawn_with_pagers(&cfg, store_pagers(&dir, cfg.n_shards)).expect("engine");
    let mut submitted = 0u64;
    let max_frames = fleet.streams.iter().map(|s| s.n_frames).max().unwrap_or(0);
    for i in 0..max_frames {
        for s in &fleet.streams {
            if i < s.n_frames {
                engine.submit(Ticket::untraced(), s.obs(i));
                submitted += 1;
            }
        }
    }
    let (decisions, report) = engine.finish(submitted);
    assert_eq!(
        decision_log_csv(&decisions),
        decision_log_csv(&golden),
        "disk-paged hibernation must be invisible in the decision log"
    );
    assert!(report.sessions.hibernated > 0, "{:?}", report.sessions);
    assert!(report.sessions.restored > 0);

    // The workers dropped their pagers without sealing — exactly a
    // crash. Recovery must hand back at least every session that was
    // still paged out at the end, each snapshot decoding to its
    // client.
    let mut recovered_total = 0u64;
    for shard in 0..cfg.n_shards {
        let shard_dir = dir.join(format!("shard-{shard}"));
        let recovery = TraceReader::open(&shard_dir)
            .expect("open shard store")
            .recover()
            .expect("recover shard store");
        assert!(recovery.frames.is_empty(), "pager stores hold no frames");
        let mut pager = StorePager::recover(StoreConfig::new(&shard_dir)).expect("pager recovers");
        recovered_total += pager.len() as u64;
        let clients: Vec<u32> = recovery
            .session_snapshots
            .iter()
            .map(|(client, _)| *client)
            .collect();
        for client in clients {
            if let Some(bytes) = pager.page_in(client).expect("page in") {
                let snap = SessionSnapshot::decode(&bytes).expect("snapshot decodes");
                assert_eq!(snap.client_id, client);
            }
        }
    }
    assert!(
        recovered_total >= report.sessions.hibernated_final,
        "recovered {recovered_total} sessions, but {} were paged out at shutdown",
        report.sessions.hibernated_final
    );
}

/// Elastic rebalancing under the harshest mix: hibernation thrashing
/// on disk-backed pagers while clients live-migrate between shards
/// mid-stream (one of them twice, round-tripping home). Decisions are
/// byte-identical to the plain run and every submitted frame is
/// accounted for.
#[test]
fn migration_with_disk_pagers_preserves_decisions_and_conserves_frames() {
    let fleet = fleet_64();
    let (golden, _) = serve_fleet(&ServeConfig::default(), &fleet, &mut NoopSink);

    let cfg = thrash(ServeConfig::default());
    let dir = fresh_dir("migrate");
    let engine =
        ShardEngine::spawn_with_pagers(&cfg, store_pagers(&dir, cfg.n_shards)).expect("engine");

    let mut frames = Vec::new();
    let max_frames = fleet.streams.iter().map(|s| s.n_frames).max().unwrap_or(0);
    for i in 0..max_frames {
        for s in &fleet.streams {
            if i < s.n_frames {
                frames.push(s.obs(i));
            }
        }
    }
    let wanderer = fleet.streams[3].client_id;
    let mover = fleet.streams[40].client_id;
    let third = frames.len() / 3;
    let mut submitted = 0u64;
    let mut migrations = 0u64;
    for (k, frame) in frames.into_iter().enumerate() {
        if k == third {
            // Move both clients off their hash-routed shards.
            for client in [wanderer, mover] {
                let to = (engine.route_of(client) + 1) % engine.n_shards();
                engine.migrate(client, to).expect("migrate out");
                migrations += 1;
                assert_eq!(engine.route_of(client), to);
            }
        }
        if k == 2 * third {
            // And send the wanderer back home.
            let to = (engine.route_of(wanderer) + 1) % engine.n_shards();
            engine.migrate(wanderer, to).expect("migrate home");
            migrations += 1;
        }
        engine.submit(Ticket::untraced(), frame);
        submitted += 1;
    }
    let (decisions, report) = engine.finish(submitted);
    assert_eq!(
        decision_log_csv(&decisions),
        decision_log_csv(&golden),
        "migration over disk pagers must be invisible in the decision log"
    );
    assert_eq!(report.sessions.migrations, migrations);
    assert_eq!(
        report.frames_in,
        report.frames_processed + report.shed,
        "every submitted frame must be processed or accounted as shed"
    );
    assert!(report.sessions.hibernated > 0, "thrash config must page");
}
