//! Beamforming and MU-MIMO integration: staleness-vs-overhead trade-offs
//! driven by real (simulated) channel geometry.

use mobisense_core::scenario::{Scenario, ScenarioKind};
use mobisense_net::beamform::mumimo::MuMimoEmulator;
use mobisense_net::beamform::{run_su_beamforming, run_su_beamforming_adaptive, SuBeamformer};
use mobisense_util::units::{MILLISECOND, SECOND};

#[test]
fn beamforming_gain_is_bounded_by_array_size() {
    // |h^H w|^2 <= |h|^2 (Cauchy-Schwarz), so the gain over the
    // power-split baseline is at most Nt = 4.77 dB, whatever the CSI.
    for seed in 400..406u64 {
        let mut sc = Scenario::new(ScenarioKind::Static, seed);
        let obs = sc.observe(0);
        let mut bf = SuBeamformer::new();
        bf.update_from_csi(&obs.csi);
        let g = bf.gain_db(&sc.channel().csi_at(obs.pos, obs.heading));
        assert!(g <= 4.78, "gain {g} dB exceeds the array bound");
        assert!(g > 2.0, "fresh gain {g} dB suspiciously low");
    }
}

#[test]
fn adaptive_feedback_never_collapses() {
    for (kind, seed) in [
        (ScenarioKind::Static, 410u64),
        (ScenarioKind::Micro, 411),
        (ScenarioKind::MacroRandom, 412),
    ] {
        let mut sc = Scenario::new(kind, seed);
        let stats = run_su_beamforming_adaptive(&mut sc, 10 * SECOND, seed);
        assert!(stats.mbps > 20.0, "{kind:?}: {:.1} Mbps", stats.mbps);
        assert!(stats.feedbacks > 0);
    }
}

#[test]
fn adaptive_matches_or_beats_the_stock_period_on_average() {
    let kinds = [
        ScenarioKind::Static,
        ScenarioKind::Micro,
        ScenarioKind::MacroRandom,
    ];
    let mut aware = 0.0;
    let mut fixed = 0.0;
    for (i, kind) in kinds.iter().enumerate() {
        for seed in 0..3u64 {
            let s = 420 + 10 * i as u64 + seed;
            let mut s1 = Scenario::new(*kind, s);
            aware += run_su_beamforming_adaptive(&mut s1, 12 * SECOND, s).mbps;
            let mut s2 = Scenario::new(*kind, s);
            fixed += run_su_beamforming(&mut s2, 200 * MILLISECOND, 12 * SECOND, s).mbps;
        }
    }
    assert!(
        aware > fixed * 0.97,
        "adaptive {aware:.1} far below fixed {fixed:.1} (summed Mbps)"
    );
}

#[test]
fn mumimo_total_exceeds_single_user_share() {
    // Serving 3 clients concurrently must beat a third of the medium
    // each — that is MU-MIMO's whole point.
    let mut e = MuMimoEmulator::paper_mix(430);
    let s = e.run([100 * MILLISECOND; 3], 2 * MILLISECOND, 8 * SECOND);
    assert!(s.total_mbps > 40.0, "total {:.1}", s.total_mbps);
    for (k, tp) in s.per_client_mbps.iter().enumerate() {
        assert!(*tp > 3.0, "client {k} starved: {tp:.1} Mbps");
    }
}

#[test]
fn mumimo_adaptive_beats_stock_period() {
    let mut gain_sum = 0.0;
    for seed in 440..444u64 {
        let mut e1 = MuMimoEmulator::paper_mix(seed);
        let aware = e1.run_adaptive(2 * MILLISECOND, 8 * SECOND);
        let mut e2 = MuMimoEmulator::paper_mix(seed);
        let stock = e2.run([200 * MILLISECOND; 3], 2 * MILLISECOND, 8 * SECOND);
        gain_sum += aware.total_mbps - stock.total_mbps;
    }
    assert!(
        gain_sum > 0.0,
        "adaptive MU-MIMO lost overall: {gain_sum:.1}"
    );
}
