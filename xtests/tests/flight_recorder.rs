//! Cross-crate flight-recorder tests: the always-on recording path
//! (serve with a background recorder → store → byte-identical replay),
//! live tailing concurrent with both serving and a raw writer,
//! retention/GC with protected replay windows, and the seal-rename
//! crash window the directory fsync closes.

use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use mobisense_serve::fleet::{EncodedFleet, FleetConfig};
use mobisense_serve::recording::{RecordBackend, RecordPolicy, Recorder, RecordingConfig};
use mobisense_serve::service::{decision_log_csv, serve_streams_recorded, ServeConfig};
use mobisense_serve::wire::ObsFrame;
use mobisense_store::{
    enforce_retention, replay_fleet, spawn_flight_recorder, RetentionPolicy, StoreConfig,
    StoreError, TailCursor, TailItem, TraceReader, TraceWriter,
};
use mobisense_telemetry::{NoopSink, Telemetry};
use mobisense_util::units::{Nanos, MILLISECOND, SECOND};

fn fresh_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "mobisense-xtest-flightrec-{}-{tag}-{n}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create test dir");
    dir
}

fn obs(client: u32, seq: u32) -> ObsFrame {
    ObsFrame {
        client_id: client,
        seq,
        at: 1_000_000 * seq as Nanos,
        distance_m: 2.5,
        digest: vec![0.75; 8],
    }
}

/// The tentpole acceptance path: `serve_streams` with recording
/// enabled produces a store whose replay yields a decision log
/// byte-identical to the live run's golden log — while a concurrent
/// `tail()` cursor observes a strict, never-regressing prefix of the
/// recording.
#[test]
fn recorded_serve_replays_byte_identically_with_concurrent_tail() {
    let dir = fresh_dir("serve");
    let fleet = EncodedFleet::generate(&FleetConfig {
        n_clients: 48,
        duration: 2 * SECOND,
        step: 50 * MILLISECOND,
        base_seed: 1401,
        ..FleetConfig::default()
    });
    let store = StoreConfig::new(&dir).with_target_segment_bytes(256 << 10);
    let serve_cfg = ServeConfig::default();

    let stop = AtomicBool::new(false);
    let (golden, stats, tail_rows, tail_frames) = std::thread::scope(|scope| {
        let tailer = scope.spawn(|| {
            let mut cursor = TailCursor::new(&dir);
            let mut rows: Vec<String> = Vec::new();
            let mut frames_floor = 0u64;
            loop {
                // Read the flag *before* polling: once the recorder has
                // finished, one more poll is guaranteed to see the
                // whole (now sealed) store.
                let done = stop.load(Ordering::Acquire);
                for item in cursor.poll().expect("tail poll") {
                    if let TailItem::Row(row) = item {
                        rows.push(row);
                    }
                }
                assert!(
                    cursor.frames_seen() >= frames_floor,
                    "verified prefix regressed"
                );
                frames_floor = cursor.frames_seen();
                if done {
                    break;
                }
                std::thread::yield_now();
            }
            (rows, cursor.frames_seen())
        });

        let rec = spawn_flight_recorder(
            store.clone(),
            RecordingConfig {
                capacity: 1024,
                policy: RecordPolicy::Block,
            },
        )
        .expect("spawn recorder");
        let handle = rec.handle();
        let (decisions, report) =
            serve_streams_recorded(&serve_cfg, &fleet.streams, &handle, &mut NoopSink);
        assert_eq!(report.frames_processed, fleet.total_frames());
        let (_summary, stats) = rec.finish().expect("recorder finish");
        stop.store(true, Ordering::Release);
        let (tail_rows, tail_frames) = tailer.join().expect("tailer");
        (decision_log_csv(&decisions), stats, tail_rows, tail_frames)
    });

    // Block policy: lossless, every frame and row recorded.
    assert_eq!(stats.frames, fleet.total_frames());
    assert_eq!(stats.dropped, 0);
    assert_eq!(stats.rows as usize, golden.lines().count());

    // The concurrent tail ended up with exactly the golden log (its
    // mid-run views were prefixes of this by append-only order).
    let golden_lines: Vec<&str> = golden.lines().collect();
    assert_eq!(tail_rows, golden_lines);
    assert_eq!(tail_frames, fleet.total_frames());

    // And the store replays byte-identically at several shard counts.
    let replay = replay_fleet(&store, &serve_cfg, &[1, 4], &mut NoopSink).expect("replay");
    assert_eq!(replay.golden, golden, "stored golden == live golden");
    assert!(
        replay.all_match(),
        "replay diverged at shard counts {:?}",
        replay.mismatches()
    );
}

/// A raw writer hammered from one thread while a tail cursor polls
/// from another: every yielded frame arrives exactly once, in order,
/// across flushes, seals and rotations.
#[test]
fn tail_follows_a_live_writer_without_regressing() {
    let dir = fresh_dir("livetail");
    const N: u32 = 400;
    let stop = AtomicBool::new(false);
    let seqs = std::thread::scope(|scope| {
        let tailer = scope.spawn(|| {
            let mut cursor = TailCursor::new(&dir);
            let mut seqs: Vec<u32> = Vec::new();
            loop {
                let done = stop.load(Ordering::Acquire);
                for item in cursor.poll().expect("poll") {
                    if let TailItem::Frame(f) = item {
                        seqs.push(f.seq);
                    }
                }
                if done {
                    break;
                }
                std::thread::yield_now();
            }
            seqs
        });

        let cfg = StoreConfig::new(&dir).with_target_segment_bytes(4 << 10);
        let mut w = TraceWriter::create(cfg).expect("create");
        for seq in 0..N {
            w.append_frame(&obs(1, seq)).expect("append");
            if seq % 7 == 0 {
                w.flush().expect("flush");
            }
            if seq % 97 == 96 {
                w.seal_segment().expect("seal");
            }
        }
        w.finish().expect("finish");
        stop.store(true, Ordering::Release);
        tailer.join().expect("tailer")
    });
    // Exactly once, in order: the verified prefix only ever grows.
    assert_eq!(seqs, (0..N).collect::<Vec<u32>>());
}

/// Retention under a hostile byte budget never deletes a segment
/// inside a configured replay window, and the standalone sweep
/// reports what it dropped.
#[test]
fn retention_never_gcs_a_protected_replay_window() {
    let dir = fresh_dir("retention");
    // Client 7's whole history is protected; everything else is fair
    // game under a budget far smaller than the write volume.
    let policy = RetentionPolicy::keep_everything()
        .with_max_bytes(64 << 10)
        .with_keep_last_segments(1)
        .with_replay_window(7, Nanos::MAX);
    let cfg = StoreConfig::new(&dir)
        .with_target_segment_bytes(8 << 10)
        .with_retention(policy.clone());
    let mut w = TraceWriter::create(cfg).expect("create");
    // Protected client first, so its segments are the oldest — the
    // ones GC wants most.
    for seq in 0..40u32 {
        w.append_frame(&obs(7, seq)).expect("append");
    }
    for seq in 0..2_000u32 {
        w.append_frame(&obs(100 + seq % 5, seq)).expect("append");
    }
    let summary = w.finish().expect("finish");
    assert!(summary.gc_segments > 0, "budget must force GC");

    let r = TraceReader::open(&dir).expect("open");
    let protected = r.client_frames(7).expect("client 7");
    assert_eq!(protected.len(), 40, "protected frames survived GC whole");
    let seqs: Vec<u32> = protected.iter().map(|f| f.seq).collect();
    assert_eq!(seqs, (0..40).collect::<Vec<u32>>());

    // A standalone sweep with the same policy is now a no-op (the
    // writer already enforced it) and protected ids are reported.
    let mut sink = Telemetry::new();
    let plan = enforce_retention(&dir, &policy, &mut sink).expect("sweep");
    assert!(plan.drop.is_empty(), "seal-time GC already converged");
    assert!(
        sink.events().all(|e| e.kind() != "store_retention"),
        "nothing deleted, nothing reported"
    );

    // Dropping the window (and tightening the budget) lets the sweep
    // reclaim client 7's segments, with one StoreRetention event per
    // deletion.
    let unprotected = RetentionPolicy::keep_everything()
        .with_max_bytes(8 << 10)
        .with_keep_last_segments(1);
    let plan = enforce_retention(&dir, &unprotected, &mut sink).expect("sweep");
    assert!(!plan.drop.is_empty());
    assert_eq!(
        sink.events()
            .filter(|e| e.kind() == "store_retention")
            .count(),
        plan.drop.len()
    );
    assert!(
        TraceReader::open(&dir)
            .expect("open")
            .client_frames(7)
            .expect("client 7")
            .len()
            < 40,
        "without the window the frames are reclaimable"
    );
}

/// The seal-durability crash window: `seal_segment` renames
/// `.open → .seg`, but without the parent-directory fsync a crash can
/// revert the *name* while every byte — seal footer included — is on
/// disk. With the sync disabled (the test hook), simulate exactly
/// that outcome and prove (a) strict reads refuse the store, (b)
/// recovery salvages every record, so the fix closes a window that
/// loses names, never data.
#[test]
fn crash_between_rename_and_dir_sync_loses_no_records() {
    let dir = fresh_dir("crashwindow");
    let cfg = StoreConfig::new(&dir)
        .with_target_segment_bytes(8 << 10)
        .without_dir_sync();
    let mut w = TraceWriter::create(cfg).expect("create");
    for seq in 0..200u32 {
        w.append_frame(&obs(3, seq)).expect("append");
    }
    w.append_decision_row("3,done").expect("row");
    let summary = w.finish().expect("finish");
    assert!(summary.segments.len() > 1);

    // The crash: the last rename's directory entry never became
    // durable, so after reboot the file is back to its `.open` name.
    // Its contents (with the seal footer) are intact — file data was
    // fsynced before the rename.
    let last = summary.segments.last().expect("segments");
    let reverted = dir.join(format!("seg-{:08}.open", last.id));
    std::fs::rename(&last.path, &reverted).expect("simulate lost rename");

    // Strict reads refuse the store: the durability promise of the
    // sealed name is gone.
    let r = TraceReader::open(&dir).expect("open");
    assert!(matches!(
        r.read_frames(),
        Err(StoreError::Unsealed { segment_id }) if segment_id == last.id
    ));

    // Recovery salvages every single record — the window only ever
    // loses the name.
    let rec = r.recover().expect("recover");
    assert!(rec.skipped.is_empty());
    assert_eq!(rec.frames.len(), 200, "no frame lost to the crash window");
    assert_eq!(rec.decision_rows, vec!["3,done"]);
    assert_eq!(rec.tail_segments, 1, "the reverted segment reads as a tail");
}

/// A backend whose first write parks on a gate, exposing counters the
/// test can read after the recorder is gone. Lets the shutdown tests
/// pin the channel in a known state (backend busy, queue full,
/// producer parked) before racing `drop` against a blocked push.
struct GatedBackend {
    /// While false, `record_frame` spins; the drain stalls here.
    gate: Arc<AtomicBool>,
    /// Set when `record_frame` is first entered (the backend holds a
    /// frame that is no longer in the queue).
    entered: Arc<AtomicBool>,
    /// Frames the backend has durably "written".
    written: Arc<AtomicU64>,
}

impl RecordBackend for GatedBackend {
    type Output = ();

    fn record_frame(&mut self, _bytes: &[u8]) -> io::Result<()> {
        self.entered.store(true, Ordering::Release);
        while !self.gate.load(Ordering::Acquire) {
            std::thread::yield_now();
        }
        self.written.fetch_add(1, Ordering::Release);
        Ok(())
    }

    fn record_row(&mut self, _row: &str) -> io::Result<()> {
        Ok(())
    }

    fn finish(self) -> io::Result<()> {
        Ok(())
    }
}

/// Dropping a `Recorder` while a producer is parked on a full channel
/// must wake the producer (its push fails, counted dropped), let the
/// backend drain the backlog, and join the thread — under *every*
/// interleaving of the drop and the blocked push. The channel is
/// pinned first: capacity 1, the backend gated holding frame 0, frame
/// 1 filling the queue, and a producer thread blocked pushing frame 2.
#[test]
fn dropping_recorder_wakes_blocked_producer_and_drains() {
    let gate = Arc::new(AtomicBool::new(false));
    let entered = Arc::new(AtomicBool::new(false));
    let written = Arc::new(AtomicU64::new(0));
    let rec = Recorder::spawn(
        GatedBackend {
            gate: Arc::clone(&gate),
            entered: Arc::clone(&entered),
            written: Arc::clone(&written),
        },
        RecordingConfig {
            capacity: 1,
            policy: RecordPolicy::Block,
        },
    )
    .expect("spawn");
    let h = rec.handle();

    // Frame 0: drained immediately; the backend parks on the gate.
    assert!(h.record_frame(&[0]));
    while !entered.load(Ordering::Acquire) {
        std::thread::yield_now();
    }
    // Frame 1: fills the capacity-1 queue (the backend isn't popping).
    assert!(h.record_frame(&[1]));

    // Frame 2: must block — the producer thread parks on `not_full`.
    // It can only return once the channel closes (the gate stays shut
    // until after its push fails), so its result is deterministic.
    let producer = std::thread::spawn({
        let h = h.clone();
        let gate = Arc::clone(&gate);
        move || {
            let ok = h.record_frame(&[2]);
            // Only now may the backend drain; the recorder thread is
            // still parked in `record_frame` holding frame 0.
            gate.store(true, Ordering::Release);
            ok
        }
    });

    // Give the producer a chance to actually park (the outcome is the
    // same even if the drop wins this race and closes first).
    for _ in 0..100 {
        std::thread::yield_now();
    }

    // The race under test: drop closes the channel, wakes the parked
    // producer, and joins the recorder thread.
    drop(rec);

    let accepted = producer.join().expect("producer");
    assert!(
        !accepted,
        "the parked push must fail once the channel closes"
    );
    assert_eq!(
        written.load(Ordering::Acquire),
        2,
        "the backlog (frames 0 and 1) drained before the thread exited"
    );
    let stats = h.stats();
    assert_eq!(stats.frames, 2, "two frames were accepted");
    assert_eq!(stats.dropped, 1, "the parked push was counted dropped");
}

/// Conservation under a racing shutdown: whatever interleaving `drop`
/// lands in, every *accepted* frame is written and every refused frame
/// is counted dropped — no frame is lost or double-counted. Runs many
/// rounds so the drop strikes at varied points of the producer's loop.
#[test]
fn racing_drop_conserves_every_accepted_frame() {
    /// Counts writes through an `Arc` that outlives the recorder.
    struct Counting(Arc<AtomicU64>);
    impl RecordBackend for Counting {
        type Output = ();
        fn record_frame(&mut self, _bytes: &[u8]) -> io::Result<()> {
            self.0.fetch_add(1, Ordering::Release);
            Ok(())
        }
        fn record_row(&mut self, _row: &str) -> io::Result<()> {
            Ok(())
        }
        fn finish(self) -> io::Result<()> {
            Ok(())
        }
    }

    const ROUNDS: usize = 40;
    const FRAMES_PER_ROUND: u64 = 100;
    for round in 0..ROUNDS {
        let written = Arc::new(AtomicU64::new(0));
        let rec = Recorder::spawn(
            Counting(Arc::clone(&written)),
            RecordingConfig {
                capacity: 2,
                policy: RecordPolicy::Block,
            },
        )
        .expect("spawn");
        let h = rec.handle();
        let producer = std::thread::spawn({
            let h = h.clone();
            move || {
                let mut accepted = 0u64;
                for i in 0..FRAMES_PER_ROUND {
                    if h.record_frame(&i.to_le_bytes()) {
                        accepted += 1;
                    }
                }
                accepted
            }
        });
        // Vary where in the producer's loop the drop lands.
        for _ in 0..round * 8 {
            std::thread::yield_now();
        }
        drop(rec); // closes, drains the backlog, joins
        let accepted = producer.join().expect("producer");
        let stats = h.stats();
        assert_eq!(
            written.load(Ordering::Acquire),
            accepted,
            "round {round}: every accepted frame reached the backend"
        );
        assert_eq!(stats.frames, accepted, "round {round}: stats agree");
        assert_eq!(
            accepted + stats.dropped,
            FRAMES_PER_ROUND,
            "round {round}: accepted + dropped covers every push"
        );
    }
}
