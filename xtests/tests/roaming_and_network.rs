//! Network-level integration: multi-AP worlds, roaming schemes, and the
//! end-to-end mobility-aware stack.

use mobisense_net::roaming::{run_roaming, RoamingConfig, RoamingScheme};
use mobisense_net::sim::{run_end_to_end, Stack};
use mobisense_net::wlan::{MultiApWorld, WorldConfig};
use mobisense_util::units::{MILLISECOND, SECOND};
use mobisense_util::Vec2;

fn corridor(seed: u64) -> MultiApWorld {
    MultiApWorld::new(
        WorldConfig::default(),
        vec![Vec2::new(4.0, 10.0), Vec2::new(46.0, 10.0)],
        seed,
    )
}

#[test]
fn every_scheme_keeps_the_client_connected() {
    for scheme in [
        RoamingScheme::ClientDefault,
        RoamingScheme::SensorHint,
        RoamingScheme::Controller,
    ] {
        let mut w = corridor(300);
        let stats = run_roaming(
            &mut w,
            RoamingConfig::for_scheme(scheme),
            40 * SECOND,
            50 * MILLISECOND,
            300,
        );
        assert!(
            stats.mean_mbps > 10.0,
            "{}: {:.1} Mbps",
            scheme.label(),
            stats.mean_mbps
        );
        assert!(
            stats.outage_fraction < 0.2,
            "{}: outage {:.2}",
            scheme.label(),
            stats.outage_fraction
        );
    }
}

#[test]
fn controller_beats_default_across_walks() {
    let mut ctrl = 0.0;
    let mut dflt = 0.0;
    for seed in 310..316u64 {
        let mut w1 = MultiApWorld::with_random_walk(WorldConfig::default(), 4, seed);
        dflt += run_roaming(
            &mut w1,
            RoamingConfig::for_scheme(RoamingScheme::ClientDefault),
            45 * SECOND,
            50 * MILLISECOND,
            seed,
        )
        .mean_mbps;
        let mut w2 = MultiApWorld::with_random_walk(WorldConfig::default(), 4, seed);
        ctrl += run_roaming(
            &mut w2,
            RoamingConfig::for_scheme(RoamingScheme::Controller),
            45 * SECOND,
            50 * MILLISECOND,
            seed,
        )
        .mean_mbps;
    }
    assert!(
        ctrl > dflt,
        "controller {ctrl:.1} <= default {dflt:.1} (summed Mbps)"
    );
}

#[test]
fn fast_bss_transition_reduces_outage() {
    // Paper section 9: 802.11r cuts the 200 ms handoff to ~40 ms.
    let run_with_outage = |outage_ms: u64| {
        let mut w = corridor(320);
        let cfg = RoamingConfig {
            handoff_outage: outage_ms * MILLISECOND,
            ..RoamingConfig::for_scheme(RoamingScheme::SensorHint)
        };
        run_roaming(&mut w, cfg, 40 * SECOND, 50 * MILLISECOND, 320)
    };
    let slow = run_with_outage(200);
    let fast = run_with_outage(40);
    assert!(fast.outage_fraction <= slow.outage_fraction);
}

#[test]
fn end_to_end_motion_aware_stack_wins() {
    let mut aware = 0.0;
    let mut dflt = 0.0;
    for seed in 330..334u64 {
        let mut w1 = corridor(seed);
        dflt += run_end_to_end(&mut w1, Stack::Default, 30 * SECOND, seed).mbps;
        let mut w2 = corridor(seed);
        aware += run_end_to_end(&mut w2, Stack::MotionAware, 30 * SECOND, seed).mbps;
    }
    assert!(
        aware > dflt,
        "motion-aware {aware:.1} <= default {dflt:.1} (summed Mbps)"
    );
}

#[test]
fn world_views_are_consistent() {
    let mut w = corridor(340);
    let obs = w.observe(5 * SECOND);
    assert_eq!(obs.aps.len(), w.n_aps());
    for (i, ap) in obs.aps.iter().enumerate() {
        // Distance must match the AP geometry.
        let d = w.ap_pos(i).dist(obs.pos);
        assert!((d - ap.distance_m).abs() < 1e-9);
        // RSSI and SNR must agree up to the constant noise floor.
        let implied_snr = ap.rssi_dbm - w.config().base.channel.noise_floor_dbm();
        assert!(
            (implied_snr - ap.snr_db).abs() < 4.0,
            "AP{i}: rssi-implied snr {implied_snr:.1} vs true {:.1}",
            ap.snr_db
        );
    }
}
