//! Cross-crate trace-store tests: the golden-regression contract (a
//! recorded 256-client fleet replays byte-identically through 1, 2, 4
//! and 8 shards), kill-mid-write recovery, index-filtered
//! single-client replay, and compaction transparency.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use mobisense_serve::fleet::{EncodedFleet, FleetConfig};
use mobisense_serve::service::ServeConfig;
use mobisense_store::{
    compact, record_fleet, replay_client, replay_fleet, StoreConfig, TraceReader, TraceWriter,
};
use mobisense_telemetry::{NoopSink, Telemetry};
use mobisense_util::units::{MILLISECOND, SECOND};

fn fresh_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "mobisense-xtest-store-{}-{tag}-{n}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create test dir");
    dir
}

fn fleet_256() -> EncodedFleet {
    EncodedFleet::generate(&FleetConfig {
        n_clients: 256,
        duration: 2 * SECOND,
        step: 50 * MILLISECOND,
        base_seed: 2014,
        ..FleetConfig::default()
    })
}

/// The tentpole contract, now through disk: record a 256-client fleet
/// plus its live decision log, then replay the *stored* frames through
/// 1, 2, 4 and 8 shards and demand the golden bytes back every time.
#[test]
fn golden_replay_256_clients_across_shard_counts() {
    let dir = fresh_dir("golden");
    let fleet = fleet_256();
    let store = StoreConfig::new(&dir).with_target_segment_bytes(1 << 20);
    let serve_cfg = ServeConfig::default();
    let mut sink = Telemetry::new();

    let rec = record_fleet(&store, &serve_cfg, &fleet, &mut sink).expect("record");
    assert_eq!(rec.frames, fleet.total_frames());
    assert!(rec.bytes > 0);
    assert!(rec.segments.len() > 1, "1 MiB target must rotate");
    assert!(
        sink.events().any(|e| e.kind() == "store_segment"),
        "recording reports segments"
    );

    let replay = replay_fleet(&store, &serve_cfg, &[1, 2, 4, 8], &mut NoopSink).expect("replay");
    assert_eq!(replay.frames, rec.frames);
    assert_eq!(replay.clients, 256);
    assert_eq!(replay.golden, rec.golden, "stored golden log reads back");
    assert!(
        replay.all_match(),
        "replay diverged at shard counts {:?}",
        replay.mismatches()
    );
}

/// Kill-mid-write: a writer that dies between rotations loses nothing
/// that was sealed. Every sealed frame is recovered, plus a clean
/// prefix of the in-flight tail.
#[test]
fn kill_mid_write_recovers_every_sealed_frame() {
    let dir = fresh_dir("crash");
    let fleet = EncodedFleet::generate(&FleetConfig {
        n_clients: 32,
        duration: 2 * SECOND,
        step: 50 * MILLISECOND,
        base_seed: 7,
        ..FleetConfig::default()
    });
    // Small segments so the "crash" lands mid-store with several
    // segments already sealed.
    let cfg = StoreConfig::new(&dir).with_target_segment_bytes(64 << 10);
    let mut w = TraceWriter::create(cfg).expect("create");
    let mut written = 0u64;
    for bytes in fleet.encoded_frames_time_major() {
        w.append_encoded(bytes).expect("append");
        written += 1;
    }
    let sealed_frames: u64 = w
        .sealed()
        .iter()
        .map(|m| m.index.as_ref().expect("index").frames)
        .sum();
    assert!(sealed_frames > 0, "need sealed segments before the crash");
    assert!(sealed_frames < written, "need an in-flight tail too");
    // The process dies here: buffered bytes reach the OS, no seal.
    let tail = w.abandon().expect("abandon");
    // Make the cut ragged, as a real crash usually would.
    let mut bytes = std::fs::read(&tail).expect("read");
    let cut = bytes.len() - 3;
    bytes.truncate(cut);
    std::fs::write(&tail, &bytes).expect("write");

    let reader = TraceReader::open(&dir).expect("open");
    let rec = reader.recover().expect("recover");
    assert!(rec.skipped.is_empty(), "no sealed segment may be lost");
    assert_eq!(rec.tail_segments, 1);
    assert!(
        rec.frames.len() as u64 >= sealed_frames,
        "recovered {} of {sealed_frames} sealed frames",
        rec.frames.len()
    );
    // The recovered stream is a prefix of what was written: frame i of
    // the time-major order, byte for byte.
    for (got, want) in rec.frames.iter().zip(fleet.encoded_frames_time_major()) {
        assert_eq!(got.encode().as_slice(), want);
    }
}

/// Index-filtered single-client replay reproduces exactly that
/// client's rows of the fleet golden log.
#[test]
fn filtered_replay_matches_golden_rows() {
    let dir = fresh_dir("filter");
    let fleet = EncodedFleet::generate(&FleetConfig {
        n_clients: 48,
        duration: 2 * SECOND,
        step: 50 * MILLISECOND,
        base_seed: 99,
        ..FleetConfig::default()
    });
    let store = StoreConfig::new(&dir).with_target_segment_bytes(128 << 10);
    let serve_cfg = ServeConfig::default();
    let rec = record_fleet(&store, &serve_cfg, &fleet, &mut NoopSink).expect("record");
    for client in [0u32, 17, 47] {
        let rows = replay_client(&store, &serve_cfg, client, &mut NoopSink).expect("replay");
        let want: Vec<&str> = rec
            .golden
            .lines()
            .skip(1)
            .filter(|l| l.starts_with(&format!("{client},")))
            .collect();
        assert_eq!(rows, want, "client {client} rows diverged");
    }
}

/// Compaction changes the files but not one byte of replay output.
#[test]
fn compaction_is_invisible_to_replay() {
    let dir = fresh_dir("compact");
    let fleet = EncodedFleet::generate(&FleetConfig {
        n_clients: 32,
        duration: 2 * SECOND,
        step: 50 * MILLISECOND,
        base_seed: 3,
        ..FleetConfig::default()
    });
    let store = StoreConfig::new(&dir).with_target_segment_bytes(32 << 10);
    let serve_cfg = ServeConfig::default();
    let rec = record_fleet(&store, &serve_cfg, &fleet, &mut NoopSink).expect("record");
    let before = TraceReader::open(&dir).expect("open").segments().len();
    assert!(before > 2, "fragmented store expected");

    let merged = StoreConfig::new(&dir).with_target_segment_bytes(4 << 20);
    let report = compact(&merged, &mut NoopSink).expect("compact");
    assert_eq!(report.segments_before, before);
    assert!(report.segments_after < before);
    assert_eq!(report.frames, rec.frames);

    let replay = replay_fleet(&store, &serve_cfg, &[1, 4], &mut NoopSink).expect("replay");
    assert_eq!(replay.golden, rec.golden);
    assert!(replay.all_match(), "compaction changed replay output");
}
