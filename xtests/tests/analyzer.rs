//! Cross-crate analyzer tests: the lint suite holds on the shipped
//! workspace, every lint self-describes, and the telemetry round-trip
//! test is *generated* from the same `Event` inventory the analyzer's
//! exhaustiveness lint checks — so adding a variant without extending
//! the exporter fails here and under `mobisense-analyze` alike.

use std::path::{Path, PathBuf};

use mobisense_analyze::lints::telemetry::event_variants;
use mobisense_analyze::{all_lints, load_workspace, run, run_full, Lint};
use mobisense_telemetry::export::{event_to_json, parse_event};
use mobisense_telemetry::Event;

/// The workspace root: xtests' manifest dir is `<root>/xtests`.
fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("xtests has a parent")
        .to_path_buf()
}

/// The shipped workspace is lint-clean *including waiver hygiene*:
/// what CI enforces with `cargo run -p mobisense-analyze --
/// --deny-all`, asserted here so a plain `cargo test` catches
/// regressions too. Every waiver in the tree must still be earning
/// its keep — a stale one is a finding.
#[test]
fn shipped_workspace_has_no_findings() {
    let ws = load_workspace(&repo_root()).expect("load workspace");
    assert!(
        ws.files.len() >= 40,
        "workspace discovery looks broken: only {} files",
        ws.files.len()
    );
    let out = run_full(&ws, &all_lints(), true);
    let rendered: Vec<String> = out.findings.iter().map(|f| f.to_string()).collect();
    assert!(
        out.findings.is_empty(),
        "lint findings:\n{}",
        rendered.join("\n")
    );
    assert!(
        !out.suppressions.is_empty(),
        "the workspace carries waivers; zero recorded suppressions \
         means waiver accounting broke"
    );
}

/// Each committed known-bad fixture tree makes exactly its lint fire —
/// the same trees CI gates with `--root ... --only <lint> --deny-all`.
#[test]
fn committed_fixtures_trip_their_lints() {
    let cases: [(&str, &str, &[&str]); 3] = [
        ("hold_and_call", "hold-and-call", &["fs::rename", "cycle"]),
        ("blocking_hot_path", "hot-path", &["sleep", "fs::write"]),
        ("error_swallow", "error-swallow", &["let _", ".ok()"]),
    ];
    for (dir, lint_name, needles) in cases {
        let root = repo_root().join("crates/analyze/fixtures").join(dir);
        let ws = load_workspace(&root).unwrap_or_else(|e| panic!("load fixture {dir}: {e}"));
        let lints: Vec<Box<dyn Lint>> = all_lints()
            .into_iter()
            .filter(|l| l.name() == lint_name)
            .collect();
        assert_eq!(lints.len(), 1, "lint {lint_name} exists");
        let findings = run(&ws, &lints);
        assert!(
            !findings.is_empty(),
            "fixture {dir} no longer trips {lint_name}"
        );
        for needle in needles {
            assert!(
                findings.iter().any(|f| f.message.contains(needle)),
                "fixture {dir} lost its `{needle}` finding: {findings:?}"
            );
        }
    }
}

/// The suite carries the nine contract lints, each with a distinct
/// name and a non-empty invariant statement (what `--list` prints).
#[test]
fn lint_suite_covers_the_nine_contracts() {
    let lints = all_lints();
    let names: Vec<&str> = lints.iter().map(|l| l.name()).collect();
    for expected in [
        "determinism",
        "panic-paths",
        "lock-discipline",
        "hold-and-call",
        "hot-path",
        "error-swallow",
        "telemetry-exhaustive",
        "format-const",
        "unsafe-ban",
    ] {
        assert!(
            names.contains(&expected),
            "missing lint {expected}: {names:?}"
        );
    }
    let mut sorted = names.clone();
    sorted.sort();
    sorted.dedup();
    assert_eq!(sorted.len(), names.len(), "duplicate lint names: {names:?}");
    for lint in &lints {
        assert!(
            lint.invariant().len() > 20,
            "lint {} has no real invariant description",
            lint.name()
        );
    }
}

/// A sample value for each known `Event` variant. Failing on an
/// unknown name is the point: a variant added to `event.rs` shows up
/// in the lexical inventory below before anyone writes a sample here.
fn sample_for(variant: &str) -> Event {
    match variant {
        "Decision" => Event::Decision {
            at: 1_000,
            mode: "micro".to_string(),
            direction: Some("approaching".to_string()),
        },
        "TofMedian" => Event::TofMedian {
            at: 2_000,
            cycles: 3.25,
        },
        "RateChange" => Event::RateChange {
            at: 3_000,
            from_mcs: 4,
            to_mcs: 7,
        },
        "Handoff" => Event::Handoff {
            at: 4_000,
            from_ap: 1,
            to_ap: 2,
        },
        "Beamsound" => Event::Beamsound { at: 5_000, ap: 3 },
        "AmpduTx" => Event::AmpduTx {
            at: 6_000,
            mcs: 5,
            n_mpdus: 16,
            n_delivered: 14,
            airtime: 250_000,
        },
        "Goodput" => Event::Goodput {
            at: 7_000,
            elapsed: 1_000_000,
            bits: 123_456,
        },
        "ServeShard" => Event::ServeShard {
            at: 8_000,
            shard: 2,
            frames: 1_000,
            decisions: 12,
            shed: 3,
            max_depth: 9,
        },
        "StoreSegment" => Event::StoreSegment {
            at: 9_000,
            segment: 7,
            frames: 512,
            bytes: 65_536,
        },
        "StoreRecovery" => Event::StoreRecovery {
            at: 10_000,
            segment: 8,
            frames: 100,
            lost: 4,
        },
        "ServeRecorder" => Event::ServeRecorder {
            at: 11_000,
            frames: 2_048,
            rows: 16,
            dropped: 5,
            max_depth: 33,
        },
        "StoreRetention" => Event::StoreRetention {
            at: 12_000,
            segment: 9,
            frames: 256,
            bytes: 32_768,
        },
        "Stall" => Event::Stall {
            at: 0,
            source: "shard-2".to_string(),
            intervals: 3,
            backlog: 512,
        },
        "Snapshot" => Event::Snapshot {
            at: 0,
            seq: 4,
            metrics: 23,
            bytes: 2_048,
        },
        "StoreCompaction" => Event::StoreCompaction {
            at: 13_000,
            segments_in: 6,
            segments_out: 2,
            records: 4_096,
            bytes_in: 1_048_576,
            bytes_out: 524_288,
        },
        "EdgeConn" => Event::EdgeConn {
            at: 14_000,
            conn: 17,
            frames: 120,
            bytes: 7_440,
            resyncs: 1,
            outcome: "eof".to_string(),
        },
        "SessionHibernate" => Event::SessionHibernate {
            at: 16_000,
            client_id: 42,
            shard: 1,
            bytes: 1_280,
        },
        "SessionRestore" => Event::SessionRestore {
            at: 17_000,
            client_id: 42,
            shard: 1,
            wait_ns: 35_000,
        },
        "SessionMigrate" => Event::SessionMigrate {
            at: 18_000,
            client_id: 42,
            from_shard: 1,
            to_shard: 3,
            bytes: 1_280,
        },
        "EdgeServe" => Event::EdgeServe {
            at: 15_000,
            conns: 10_240,
            rejected_conns: 3,
            frames: 40_960,
            rejected_frames: 12,
            bytes: 2_539_520,
            datagrams: 64,
        },
        other => panic!(
            "Event::{other} has no JSONL round-trip sample — a new \
             variant was added to telemetry::Event; extend sample_for \
             (and the exporter, which mobisense-analyze also checks)"
        ),
    }
}

/// Every `Event` variant — enumerated from `event.rs`'s *source* with
/// the analyzer's own inventory — survives a JSONL round-trip intact.
/// Exhaustive by construction: the variant list is not hand-kept.
#[test]
fn every_event_variant_round_trips_through_jsonl() {
    let event_rs = repo_root().join("crates/telemetry/src/event.rs");
    let source = std::fs::read_to_string(&event_rs).expect("read event.rs");
    let variants = event_variants(&source);
    assert!(
        variants.len() >= 15,
        "Event inventory shrank unexpectedly: {variants:?}"
    );
    for variant in &variants {
        let event = sample_for(variant);
        let json = event_to_json(&event);
        assert!(
            json.starts_with('{') && json.ends_with('}'),
            "Event::{variant} encodes as one flat JSON object: {json}"
        );
        let parsed = parse_event(&json)
            .unwrap_or_else(|e| panic!("Event::{variant} failed to parse back: {e}\n{json}"));
        assert_eq!(
            parsed, event,
            "Event::{variant} round-trip changed the value"
        );
    }
}
