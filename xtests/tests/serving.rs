//! Cross-crate serving-layer tests: the shard-count determinism
//! contract over a real synthetic fleet, and a small soak run under
//! load shedding (the CI smoke test).

use mobisense_serve::fleet::{EncodedFleet, FleetConfig};
use mobisense_serve::queue::OverflowPolicy;
use mobisense_serve::service::{decision_log_csv, serve_fleet, ServeConfig};
use mobisense_telemetry::{Event, NoopSink, Telemetry};
use mobisense_util::units::{MILLISECOND, SECOND};

fn fleet_64() -> EncodedFleet {
    EncodedFleet::generate(&FleetConfig {
        n_clients: 64,
        duration: 10 * SECOND,
        step: 50 * MILLISECOND,
        base_seed: 2014,
        ..FleetConfig::default()
    })
}

/// The tentpole contract: under blocking backpressure the merged
/// decision log is byte-identical for 1, 2 and 8 shards.
#[test]
fn decision_log_identical_across_shard_counts() {
    let fleet = fleet_64();
    let mut logs = Vec::new();
    for n_shards in [1usize, 2, 8] {
        let cfg = ServeConfig {
            n_shards,
            ..ServeConfig::default()
        };
        let (decisions, report) = serve_fleet(&cfg, &fleet, &mut NoopSink);
        assert_eq!(
            report.frames_processed,
            fleet.total_frames(),
            "{n_shards} shards lost frames"
        );
        assert_eq!(report.shed, 0, "{n_shards} shards shed under Block");
        assert!(!decisions.is_empty());
        logs.push((n_shards, decision_log_csv(&decisions)));
    }
    let (_, ref base) = logs[0];
    for (n_shards, log) in &logs[1..] {
        assert_eq!(
            base, log,
            "decision log differs between 1 and {n_shards} shards"
        );
    }
    // And the whole run replays: a second pass over the same fleet
    // yields the same log again.
    let (decisions, _) = serve_fleet(&ServeConfig::default(), &fleet, &mut NoopSink);
    assert_eq!(base, &decision_log_csv(&decisions), "replay diverged");
}

/// CI soak smoke: 64 clients through 2 shards with tiny queues and
/// load shedding. Whatever the host scheduler does, the accounting
/// invariants must hold and telemetry must describe every shard.
#[test]
fn soak_smoke_64_clients_2_shards() {
    let fleet = fleet_64();
    let cfg = ServeConfig {
        n_shards: 2,
        queue_capacity: 8,
        overflow: OverflowPolicy::ShedOldestPerClient,
        ..ServeConfig::default()
    };
    let mut tel = Telemetry::new();
    let (decisions, report) = serve_fleet(&cfg, &fleet, &mut tel);

    // Frame conservation: every submitted frame was processed or shed.
    assert_eq!(report.frames_in, fleet.total_frames());
    assert_eq!(report.frames_in, report.frames_processed + report.shed);
    assert!(report.shed_rate() <= 1.0);

    // Decisions are consistent with the report and sorted canonically.
    assert_eq!(report.decisions as usize, decisions.len());
    assert_eq!(report.per_mode.iter().sum::<u64>(), report.decisions);
    assert!(decisions
        .windows(2)
        .all(|w| (w[0].client_id, w[0].seq) < (w[1].client_id, w[1].seq)));

    // Telemetry: one ServeShard event per shard, agreeing with the
    // report, plus the run-level span.
    let shard_events: Vec<(u32, u64, u64)> = tel
        .events()
        .filter_map(|e| match e {
            Event::ServeShard {
                shard,
                frames,
                shed,
                ..
            } => Some((*shard, *frames, *shed)),
            _ => None,
        })
        .collect();
    assert_eq!(shard_events.len(), 2);
    assert_eq!(
        shard_events.iter().map(|&(_, f, _)| f).sum::<u64>(),
        report.frames_processed
    );
    assert_eq!(
        shard_events.iter().map(|&(_, _, s)| s).sum::<u64>(),
        report.shed
    );
    let (count, _) = tel
        .registry
        .histogram_snapshot("serve.run")
        .expect("serve.run span recorded");
    assert_eq!(count, 1);

    // Depth is sampled at every pop; latency at every completed
    // classification. Under shedding the host scheduler decides how
    // many classifications complete (possibly none on a loaded
    // machine), so assert the counting invariants, not a minimum.
    assert_eq!(report.depth.count(), report.frames_processed);
    assert!(report.latency_ns.count() >= report.decisions);
}

/// The serving layer and the single-link harness agree: a one-client
/// fleet served through the wire codec produces exactly the decisions
/// its scenario would produce in-process (modulo the f32 digest
/// quantisation, which the in-process leg reproduces here).
#[test]
fn served_decisions_match_in_process_session() {
    use mobisense_core::pipeline::PipelineSession;
    use mobisense_core::scenario::Scenario;
    use mobisense_serve::wire::decode_stream;

    let fleet_cfg = FleetConfig {
        n_clients: 1,
        duration: 12 * SECOND,
        step: 50 * MILLISECOND,
        base_seed: 77,
        ..FleetConfig::default()
    };
    let fleet = EncodedFleet::generate(&fleet_cfg);
    let serve_cfg = ServeConfig::default();
    let (decisions, _) = serve_fleet(&serve_cfg, &fleet, &mut NoopSink);

    // In-process replay: same scenario, same wire-quantised digests.
    let kind = fleet_cfg.kind_for(0);
    let mut scenario = Scenario::new(kind, fleet_cfg.seed_for(0));
    let mut session =
        PipelineSession::new(serve_cfg.pipeline.clone(), serve_cfg.session_seed_for(0));
    let frames = decode_stream(&fleet.streams[0].bytes).expect("stream decodes");
    let mut expected = Vec::new();
    let mut last = None;
    for frame in &frames {
        let obs = scenario.observe(frame.at);
        assert_eq!(obs.distance_m, frame.distance_m);
        if let Some(c) =
            session.observe_profile_with(frame.at, frame.profile(), frame.distance_m, &mut NoopSink)
        {
            if frame.at >= serve_cfg.pipeline.warmup && last != Some(c) {
                last = Some(c);
                expected.push((frame.seq, frame.at, c));
            }
        }
    }
    assert!(!expected.is_empty(), "scenario {kind:?} never decided");
    assert_eq!(decisions.len(), expected.len());
    for (d, (seq, at, c)) in decisions.iter().zip(&expected) {
        assert_eq!((d.seq, d.at, d.classification), (*seq, *at, *c));
    }
}
