//! MAC-layer protocol integration: rate adaptation and aggregation over
//! recorded channel traces, with and without mobility hints.

use mobisense_bench::{link_scenario, TraceBundle, TRACE_STEP};
use mobisense_core::scenario::ScenarioKind;
use mobisense_mac::agg::AggPolicy;
use mobisense_mac::rate::{AtherosRa, EsnrRa, RateAdapter, SensorHintRa, SoftRateRa};
use mobisense_mac::sim::LinkRun;
use mobisense_util::units::{MILLISECOND, SECOND};
use mobisense_util::DetRng;

/// Records a trace on a link with per-link wall attenuation, so the
/// link sits inside the adaptive range of the rate ladder rather than
/// saturating at the top MCS.
fn bundle(kind: ScenarioKind, seed: u64, secs: u64) -> TraceBundle {
    let mut sc = link_scenario(kind, seed);
    TraceBundle::record(&mut sc, secs * SECOND, TRACE_STEP, seed)
}

fn replay(b: &TraceBundle, ra: &mut dyn RateAdapter, phy_hints: bool, seed: u64) -> f64 {
    let mut rng = DetRng::seed_from_u64(seed);
    LinkRun::new()
        .run(
            ra,
            |t| b.link_state_at(t),
            |t| if phy_hints { b.phy_hint_at(t) } else { None },
            b.duration(),
            &mut rng,
        )
        .mbps
}

#[test]
fn all_schemes_deliver_on_a_static_link() {
    let b = bundle(ScenarioKind::Static, 200, 15);
    let schemes: Vec<Box<dyn RateAdapter>> = vec![
        Box::new(AtherosRa::stock()),
        Box::new(AtherosRa::mobility_aware()),
        Box::new(SensorHintRa::new(DetRng::seed_from_u64(1))),
        Box::new(SoftRateRa::new()),
        Box::new(EsnrRa::new()),
    ];
    for mut ra in schemes {
        let tp = replay(&b, ra.as_mut(), false, 42);
        assert!(tp > 40.0, "{} only reached {tp:.1} Mbps", ra.name());
    }
}

#[test]
fn mobility_hints_help_atheros_on_walks() {
    // Averaged across several walking traces, the paper's section 4.2
    // modifications must not lose to stock (and should win).
    let mut stock_sum = 0.0;
    let mut aware_sum = 0.0;
    for seed in 210..222u64 {
        let b = bundle(ScenarioKind::MacroRandom, seed, 25);
        let mut stock = AtherosRa::stock();
        stock_sum += replay(&b, &mut stock, false, seed);
        let mut aware = AtherosRa::mobility_aware();
        aware_sum += replay(&b, &mut aware, true, seed);
    }
    assert!(
        aware_sum > stock_sum,
        "motion-aware {aware_sum:.1} <= stock {stock_sum:.1}"
    );
}

#[test]
fn esnr_upper_bounds_blind_schemes_on_walks() {
    let b = bundle(ScenarioKind::MacroRandom, 220, 25);
    let mut esnr = EsnrRa::new();
    let genie = replay(&b, &mut esnr, false, 1);
    let mut stock = AtherosRa::stock();
    let blind = replay(&b, &mut stock, false, 1);
    assert!(
        genie > blind * 0.95,
        "ESNR {genie:.1} should not lose to blind Atheros {blind:.1}"
    );
}

#[test]
fn long_aggregation_wins_when_static_short_wins_when_walking() {
    let static_b = bundle(ScenarioKind::Static, 230, 15);
    let walk_b = bundle(ScenarioKind::MacroRandom, 231, 20);
    let run_fixed = |b: &TraceBundle, ms: u64| {
        let mut ra = AtherosRa::stock();
        let mut rng = DetRng::seed_from_u64(9);
        LinkRun::new()
            .with_agg(AggPolicy::Fixed(ms * MILLISECOND))
            .run(
                &mut ra,
                |t| b.link_state_at(t),
                |_| None,
                b.duration(),
                &mut rng,
            )
            .mbps
    };
    let s2 = run_fixed(&static_b, 2);
    let s8 = run_fixed(&static_b, 8);
    assert!(s8 > s2, "static: 8 ms ({s8:.1}) must beat 2 ms ({s2:.1})");
    let w2 = run_fixed(&walk_b, 2);
    let w8 = run_fixed(&walk_b, 8);
    assert!(w2 > w8, "walking: 2 ms ({w2:.1}) must beat 8 ms ({w8:.1})");
}

#[test]
fn adaptive_aggregation_tracks_the_best_fixed_choice() {
    for (kind, seed) in [
        (ScenarioKind::Static, 240u64),
        (ScenarioKind::MacroRandom, 241),
    ] {
        let b = bundle(kind, seed, 20);
        let mut best_fixed: f64 = 0.0;
        for ms in [2u64, 4, 8] {
            let mut ra = AtherosRa::stock();
            let mut rng = DetRng::seed_from_u64(3);
            let tp = LinkRun::new()
                .with_agg(AggPolicy::Fixed(ms * MILLISECOND))
                .run(
                    &mut ra,
                    |t| b.link_state_at(t),
                    |_| None,
                    b.duration(),
                    &mut rng,
                )
                .mbps;
            best_fixed = best_fixed.max(tp);
        }
        let mut ra = AtherosRa::stock();
        let mut rng = DetRng::seed_from_u64(3);
        let adaptive = LinkRun::new()
            .with_agg(AggPolicy::adaptive())
            .run(
                &mut ra,
                |t| b.link_state_at(t),
                |t| b.phy_hint_at(t),
                b.duration(),
                &mut rng,
            )
            .mbps;
        assert!(
            adaptive > best_fixed * 0.85,
            "{kind:?}: adaptive {adaptive:.1} vs best fixed {best_fixed:.1}"
        );
    }
}

#[test]
fn trace_replay_is_fair_and_deterministic() {
    let b = bundle(ScenarioKind::MacroRandom, 250, 15);
    let mut a1 = AtherosRa::stock();
    let t1 = replay(&b, &mut a1, false, 5);
    let mut a2 = AtherosRa::stock();
    let t2 = replay(&b, &mut a2, false, 5);
    assert_eq!(t1, t2);
}

// ---------------------------------------------------------------------
// Telemetry integration: the event stream of a full end-to-end run obeys
// the protocol invariants the instrumentation promises.

mod telemetry_integration {
    use mobisense_net::sim::{run_end_to_end_with, EndToEndStats, Stack};
    use mobisense_net::wlan::{MultiApWorld, WorldConfig};
    use mobisense_telemetry::{export, Event, Telemetry};
    use mobisense_util::units::SECOND;
    use mobisense_util::Vec2;

    fn crossing_walk(seed: u64) -> MultiApWorld {
        let cfg = WorldConfig::default();
        let hi = cfg.base.room_hi;
        MultiApWorld::new(
            cfg,
            vec![
                Vec2::new(3.0, hi.y / 2.0),
                Vec2::new(hi.x - 3.0, hi.y / 2.0),
            ],
            seed,
        )
    }

    fn captured_run(stack: Stack, seed: u64) -> (EndToEndStats, Telemetry) {
        let mut world = crossing_walk(seed);
        let mut tel = Telemetry::new();
        let stats = run_end_to_end_with(&mut world, stack, 30 * SECOND, seed, &mut tel);
        (stats, tel)
    }

    #[test]
    fn handoff_timestamps_strictly_increase() {
        for stack in [Stack::Default, Stack::MotionAware] {
            let (stats, tel) = captured_run(stack, 3);
            let handoffs: Vec<u64> = tel
                .events()
                .filter_map(|e| match e {
                    Event::Handoff { at, .. } => Some(*at),
                    _ => None,
                })
                .collect();
            assert_eq!(handoffs.len() as u32, stats.handoffs, "{stack:?}");
            assert!(
                handoffs.windows(2).all(|w| w[0] < w[1]),
                "{stack:?}: handoff times must strictly increase: {handoffs:?}"
            );
        }
    }

    #[test]
    fn every_rate_change_is_preceded_by_a_transmission() {
        let (_, tel) = captured_run(Stack::MotionAware, 3);
        let mut last_tx_mcs: Option<u8> = None;
        let mut rate_changes = 0u64;
        for e in tel.events() {
            match e {
                Event::AmpduTx { mcs, .. } => last_tx_mcs = Some(*mcs),
                Event::RateChange {
                    from_mcs, to_mcs, ..
                } => {
                    rate_changes += 1;
                    let prev =
                        last_tx_mcs.expect("RateChange with no preceding AmpduTx in the stream");
                    assert_eq!(
                        *from_mcs, prev,
                        "rate change must switch away from the last transmitted MCS"
                    );
                    assert_ne!(from_mcs, to_mcs);
                }
                _ => {}
            }
        }
        assert!(rate_changes > 0, "a 30 s walk must change rate");
    }

    #[test]
    fn goodput_series_integrates_to_terminal_mbps() {
        for stack in [Stack::Default, Stack::MotionAware] {
            let (stats, tel) = captured_run(stack, 3);
            let series = tel.goodput_series();
            assert!(!series.is_empty());
            let bits: u64 = series.iter().map(|s| s.2).sum();
            let elapsed: u64 = series.iter().map(|s| s.1).sum();
            let integrated = bits as f64 / (elapsed as f64 / 1e9) / 1e6;
            let rel = (integrated - stats.mbps).abs() / stats.mbps;
            assert!(
                rel < 0.01,
                "{stack:?}: series integrates to {integrated:.2} Mbps but stats say {:.2}",
                stats.mbps
            );
        }
    }

    #[test]
    fn exported_stream_is_ordered_and_parses_back() {
        // The same capture the `telemetry_dump` example writes to disk:
        // its JSONL must be timestamp-ordered and parse back
        // field-for-field.
        for stack in [Stack::Default, Stack::MotionAware] {
            let (_, tel) = captured_run(stack, 3);
            let text = tel.to_jsonl();
            let parsed = export::parse_jsonl(&text).expect("dump parses back");
            let original: Vec<&Event> = tel.events().collect();
            assert_eq!(parsed.len(), original.len(), "{stack:?}");
            for (p, o) in parsed.iter().zip(&original) {
                assert_eq!(p, *o, "{stack:?}: field-for-field round trip");
            }
            assert!(
                parsed.windows(2).all(|w| w[0].at() <= w[1].at()),
                "{stack:?}: exported stream must be timestamp-ordered"
            );
        }
    }
}
